(* Tests for the CCA library: filters, the monitor-interval ledger, and
   the behavior of each congestion control algorithm under synthetic ACK
   streams and small analytic feedback loops. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let qt = QCheck_alcotest.to_alcotest

(* Synthetic ACK factory. *)
let ack ?(rtt = 0.05) ?(bytes = 1500) ?(inflight = 30_000) ?(delivered = 0)
    ?(delivered_now = 1500) ?(app_limited = false) ?(ecn_ce = false) now =
  {
    Cca.now;
    rtt;
    acked_bytes = bytes;
    sent_time = now -. rtt;
    delivered;
    delivered_now;
    inflight;
    app_limited;
    ecn_ce;
  }

let loss ?(bytes = 1500) ?(packets = []) ?(inflight = 0) ?(kind = `Dupack) now =
  { Cca.now; lost_bytes = bytes; lost_packets = packets; inflight; kind }

(* Drive a window-based CCA through an analytic ideal-link loop: the RTT a
   window [w] experiences on a link of rate [c] with floor [rm] is
   max(rm, w / c) (self-inflicted queueing).  One ack per "packet". *)
let fluid_loop cca ~c ~rm ~rtts =
  let now = ref 0.1 in
  let current_rtt = ref rm in
  for _ = 1 to rtts do
    let w = cca.Cca.cwnd () in
    let rtt = Float.max rm (w /. c) in
    current_rtt := rtt;
    let packets = max 1 (int_of_float (w /. 1500.)) in
    for _ = 1 to packets do
      now := !now +. (rtt /. float_of_int packets);
      cca.Cca.on_ack (ack ~rtt !now)
    done
  done;
  !current_rtt

(* ------------------------------------------------------------------ *)
(* Window filters                                                      *)
(* ------------------------------------------------------------------ *)

let test_extremum_min () =
  let f = Window.Extremum.create_min ~window:10. in
  Window.Extremum.push f ~time:1. 5.;
  Window.Extremum.push f ~time:2. 3.;
  Window.Extremum.push f ~time:3. 4.;
  Alcotest.(check (option (float 1e-9))) "min" (Some 3.) (Window.Extremum.get f)

let test_extremum_max () =
  let f = Window.Extremum.create_max ~window:10. in
  Window.Extremum.push f ~time:1. 5.;
  Window.Extremum.push f ~time:2. 9.;
  Window.Extremum.push f ~time:3. 4.;
  Alcotest.(check (option (float 1e-9))) "max" (Some 9.) (Window.Extremum.get f)

let test_extremum_eviction () =
  let f = Window.Extremum.create_min ~window:5. in
  Window.Extremum.push f ~time:0. 1.;
  Window.Extremum.push f ~time:6. 7.;
  (* the 1. at t=0 is stale relative to t=6 *)
  Alcotest.(check (option (float 1e-9))) "evicted" (Some 7.) (Window.Extremum.get f)

let test_extremum_empty () =
  let f = Window.Extremum.create_min ~window:5. in
  Alcotest.(check (option (float 1e-9))) "empty" None (Window.Extremum.get f);
  check_float "default" 42. (Window.Extremum.get_default f 42.)

let test_extremum_window_change () =
  let f = Window.Extremum.create_min ~window:100. in
  Window.Extremum.push f ~time:0. 1.;
  Window.Extremum.set_window f 2.;
  Window.Extremum.push f ~time:10. 5.;
  Alcotest.(check (option (float 1e-9))) "shrunk window" (Some 5.)
    (Window.Extremum.get f)

let prop_extremum_matches_naive =
  QCheck.Test.make ~name:"sliding min matches naive recomputation" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_range 0. 100.))
    (fun vs ->
      let window = 7. in
      let f = Window.Extremum.create_min ~window in
      let samples = List.mapi (fun i v -> (float_of_int i, v)) vs in
      List.for_all
        (fun (t, v) ->
          Window.Extremum.push f ~time:t v;
          let naive =
            List.filter (fun (t', _) -> t' >= t -. window && t' <= t) samples
            |> List.map snd
            |> List.fold_left Float.min infinity
          in
          match Window.Extremum.get f with
          | Some got -> Float.abs (got -. naive) < 1e-9
          | None -> false)
        samples)

let test_ewma () =
  let e = Window.Ewma.create ~gain:0.5 in
  Alcotest.(check (option (float 1e-9))) "empty" None (Window.Ewma.get e);
  Window.Ewma.push e 10.;
  check_float "first" 10. (Window.Ewma.get_default e 0.);
  Window.Ewma.push e 20.;
  check_float "second" 15. (Window.Ewma.get_default e 0.)

(* ------------------------------------------------------------------ *)
(* Mini_rng                                                            *)
(* ------------------------------------------------------------------ *)

let test_mini_rng () =
  let a = Mini_rng.create ~seed:5 and b = Mini_rng.create ~seed:5 in
  for _ = 1 to 50 do
    check_float "deterministic" (Mini_rng.float a) (Mini_rng.float b)
  done;
  let c = Mini_rng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Mini_rng.float a <> Mini_rng.float c then differs := true
  done;
  Alcotest.(check bool) "seeds differ" true !differs

(* ------------------------------------------------------------------ *)
(* Cca basics                                                          *)
(* ------------------------------------------------------------------ *)

let test_bandwidth_sample () =
  let a = ack ~rtt:0.1 ~delivered:1000 ~delivered_now:11000 1.0 in
  check_float "rate" 1e5 (Cca.bandwidth_sample a);
  let degenerate = ack ~rtt:0.0 ~delivered:5 ~delivered_now:5 1.0 in
  check_float "degenerate" 0. (Cca.bandwidth_sample degenerate)

let test_bandwidth_sample_degenerate () =
  (* Zero or negative measurement intervals must not produce garbage. *)
  let bad =
    { (ack 1.0) with Cca.sent_time = 1.5 (* "sent after acked" *) }
  in
  check_float "negative interval" 0. (Cca.bandwidth_sample bad);
  let no_delivery = { (ack 1.0) with Cca.delivered = 10; delivered_now = 10 } in
  check_float "no delivered bytes" 0. (Cca.bandwidth_sample no_delivery)

let test_stub () =
  let c = Cca.make_stub ~cwnd_bytes:15000. () in
  c.Cca.on_ack (ack 1.);
  c.Cca.on_loss (loss 2.);
  check_float "cwnd constant" 15000. (c.Cca.cwnd ());
  Alcotest.(check (option (float 1.))) "no pacing" None (c.Cca.pacing_rate ())

(* ------------------------------------------------------------------ *)
(* Mi_ledger                                                           *)
(* ------------------------------------------------------------------ *)

let test_ledger_attribution () =
  let l = Mi_ledger.create () in
  Mi_ledger.begin_mi l ~now:0. ~rate:100. ~label:1;
  Mi_ledger.on_send l ~bytes:3000;
  Mi_ledger.begin_mi l ~now:1. ~rate:200. ~label:2;
  Mi_ledger.on_send l ~bytes:1500;
  (* ACK for a packet sent during MI 1 arrives during MI 2. *)
  Mi_ledger.on_ack l ~sent_time:0.5 ~now:1.2 ~bytes:1500 ~rtt:0.05;
  Mi_ledger.on_ack l ~sent_time:0.6 ~now:1.3 ~bytes:1500 ~rtt:0.05;
  let done1 = Mi_ledger.poll l ~now:1.3 ~grace:10. in
  Alcotest.(check int) "MI 1 complete" 1 (List.length done1);
  let r = List.hd done1 in
  Alcotest.(check int) "label" 1 r.Mi_ledger.label;
  Alcotest.(check int) "acked" 3000 r.Mi_ledger.acked_bytes;
  check_float "rate" 100. r.Mi_ledger.rate

let test_ledger_loss_attribution () =
  let l = Mi_ledger.create () in
  Mi_ledger.begin_mi l ~now:0. ~rate:100. ~label:1;
  Mi_ledger.on_send l ~bytes:3000;
  Mi_ledger.begin_mi l ~now:1. ~rate:100. ~label:2;
  Mi_ledger.on_loss l ~lost_packets:[ (0.2, 1500); (0.8, 1500) ];
  let done1 = Mi_ledger.poll l ~now:1.1 ~grace:10. in
  Alcotest.(check int) "complete via loss" 1 (List.length done1);
  let r = List.hd done1 in
  check_float "loss fraction" 1. (Mi_ledger.loss_fraction r)

let test_ledger_grace () =
  let l = Mi_ledger.create () in
  Mi_ledger.begin_mi l ~now:0. ~rate:100. ~label:1;
  Mi_ledger.on_send l ~bytes:3000;
  Mi_ledger.begin_mi l ~now:1. ~rate:100. ~label:(-1);
  (* Nothing acked: completes only after the grace period. *)
  Alcotest.(check int) "not yet" 0 (List.length (Mi_ledger.poll l ~now:1.5 ~grace:2.));
  Alcotest.(check int) "after grace" 1
    (List.length (Mi_ledger.poll l ~now:3.1 ~grace:2.))

let test_ledger_filler_hidden () =
  let l = Mi_ledger.create () in
  Mi_ledger.begin_mi l ~now:0. ~rate:100. ~label:(-1);
  Mi_ledger.begin_mi l ~now:1. ~rate:100. ~label:5;
  Alcotest.(check int) "filler not reported" 0
    (List.length (Mi_ledger.poll l ~now:1.2 ~grace:0.1))

let test_ledger_slope () =
  let r =
    {
      Mi_ledger.label = 0;
      rate = 1.;
      duration = 1.;
      sent_bytes = 0;
      acked_bytes = 0;
      lost_bytes = 0;
      rtt_samples = [ (0., 0.10); (1., 0.11); (2., 0.12) ];
    }
  in
  check_float_eps 1e-9 "slope" 0.01 (Mi_ledger.rtt_slope r);
  let flat = { r with rtt_samples = [ (0., 0.1); (1., 0.1) ] } in
  check_float "flat" 0. (Mi_ledger.rtt_slope flat);
  let single = { r with rtt_samples = [ (0., 0.1) ] } in
  check_float "single" 0. (Mi_ledger.rtt_slope single)

let test_ledger_current_rate () =
  let l = Mi_ledger.create () in
  Alcotest.(check (option (float 1e-9))) "empty" None (Mi_ledger.current_rate l);
  Mi_ledger.begin_mi l ~now:0. ~rate:123. ~label:0;
  Alcotest.(check (option (float 1e-9))) "current" (Some 123.)
    (Mi_ledger.current_rate l)

let test_ledger_out_of_range_ack_ignored () =
  let l = Mi_ledger.create () in
  Mi_ledger.begin_mi l ~now:10. ~rate:100. ~label:1;
  Mi_ledger.on_send l ~bytes:1500;
  (* ACK for a packet sent before the ledger existed: no owner. *)
  Mi_ledger.on_ack l ~sent_time:5. ~now:10.5 ~bytes:1500 ~rtt:0.05;
  Mi_ledger.begin_mi l ~now:11. ~rate:100. ~label:2;
  let done1 = Mi_ledger.poll l ~now:11.1 ~grace:100. in
  Alcotest.(check int) "MI 1 still open (its send unaccounted)" 0 (List.length done1)

let test_ledger_completion_order () =
  let l = Mi_ledger.create () in
  Mi_ledger.begin_mi l ~now:0. ~rate:1. ~label:1;
  Mi_ledger.on_send l ~bytes:100;
  Mi_ledger.begin_mi l ~now:1. ~rate:2. ~label:2;
  Mi_ledger.on_send l ~bytes:100;
  Mi_ledger.begin_mi l ~now:2. ~rate:3. ~label:3;
  Mi_ledger.on_ack l ~sent_time:0.5 ~now:2.1 ~bytes:100 ~rtt:0.05;
  Mi_ledger.on_ack l ~sent_time:1.5 ~now:2.2 ~bytes:100 ~rtt:0.05;
  let finished = Mi_ledger.poll l ~now:2.3 ~grace:100. in
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ]
    (List.map (fun r -> r.Mi_ledger.label) finished)

(* ------------------------------------------------------------------ *)
(* Vegas                                                               *)
(* ------------------------------------------------------------------ *)

let test_vegas_slow_start_doubles () =
  let c = Vegas.make () in
  let w0 = c.Cca.cwnd () in
  (* Constant-RTT acks: no queueing perceived, so slow start persists and
     the window doubles every other per-RTT epoch. *)
  for i = 1 to 400 do
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.01))
  done;
  Alcotest.(check bool) "grew" true (c.Cca.cwnd () > 4. *. w0)

let test_vegas_decreases_when_queue_high () =
  (* Start with a big window so the decrease is visible above the
     2-packet floor. *)
  let c = Vegas.make ~params:{ Vegas.default_params with init_cwnd_packets = 50. } () in
  (* Establish a low base RTT, then sustained high RTT = big queue.  Keep
     the run short so the window stays well above its 2-packet floor. *)
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  for i = 1 to 5 do
    c.Cca.on_ack (ack ~rtt:0.09 (0.02 +. (float_of_int i *. 0.09)))
  done;
  let w1 = c.Cca.cwnd () in
  for i = 6 to 15 do
    c.Cca.on_ack (ack ~rtt:0.09 (0.02 +. (float_of_int i *. 0.09)))
  done;
  let w2 = c.Cca.cwnd () in
  Alcotest.(check bool) "decreasing" true (w2 < w1);
  Alcotest.(check bool) "still above floor" true (w2 > 3000.)

let test_vegas_gamma_exit () =
  (* Slow start must end as soon as perceived queueing crosses gamma. *)
  let p = { Vegas.default_params with gamma = 0.5 } in
  let c = Vegas.make ~params:p () in
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  Alcotest.(check (float 1e-9)) "in slow start" 1.
    (List.assoc "slow_start" (c.Cca.inspect ()));
  (* RTT implying > 0.5 packets queued with the current window. *)
  for i = 1 to 5 do
    c.Cca.on_ack (ack ~rtt:0.08 (0.02 +. (float_of_int i *. 0.08)))
  done;
  Alcotest.(check (float 1e-9)) "exited" 0.
    (List.assoc "slow_start" (c.Cca.inspect ()))

let test_vegas_fluid_equilibrium () =
  let p = Vegas.default_params in
  let c = Vegas.make ~params:p () in
  let rate = Sim.Units.mbps 12. in
  let rtt = fluid_loop c ~c:rate ~rm:0.04 ~rtts:400 in
  (* Equilibrium: between alpha and beta packets queued. *)
  let queued = (rtt -. 0.04) *. rate /. 1500. in
  Alcotest.(check bool)
    (Printf.sprintf "queued %.2f in [alpha-1, beta+1]" queued)
    true
    (queued >= p.Vegas.alpha -. 1. && queued <= p.Vegas.beta +. 1.)

let test_vegas_timeout_resets () =
  let c = Vegas.make () in
  for i = 1 to 200 do
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.01))
  done;
  c.Cca.on_loss (loss ~kind:`Timeout 3.);
  check_float "reset to 2 packets" 3000. (c.Cca.cwnd ())

let test_vegas_equilibrium_rtt_formula () =
  let p = Vegas.default_params in
  check_float_eps 1e-9 "formula" (0.04 +. (3. *. 1500. /. 1.5e6))
    (Vegas.equilibrium_rtt p ~rate:1.5e6 ~rm:0.04)

(* ------------------------------------------------------------------ *)
(* FAST                                                                *)
(* ------------------------------------------------------------------ *)

let test_fast_fluid_equilibrium () =
  let p = Fast_tcp.default_params in
  let c = Fast_tcp.make ~params:p () in
  let rate = Sim.Units.mbps 24. in
  let rtt = fluid_loop c ~c:rate ~rm:0.05 ~rtts:300 in
  let expect = Fast_tcp.equilibrium_rtt p ~rate ~rm:0.05 in
  check_float_eps 2e-3 "converges to alpha packets queued" expect rtt

let test_fast_alpha_scales_queue () =
  (* Doubling alpha doubles the equilibrium queue. *)
  let rate = Sim.Units.mbps 24. in
  let measure alpha =
    let p = { Fast_tcp.default_params with alpha_packets = alpha } in
    let c = Fast_tcp.make ~params:p () in
    fluid_loop c ~c:rate ~rm:0.05 ~rtts:300 -. 0.05
  in
  let q10 = measure 10. and q20 = measure 20. in
  check_float_eps 1e-3 "q(20) ~ 2 q(10)" (2. *. q10) q20

let test_fast_cap_doubling () =
  let c = Fast_tcp.make () in
  let w0 = c.Cca.cwnd () in
  (* One per-RTT update with an empty queue: growth is capped at 2x. *)
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  c.Cca.on_ack (ack ~rtt:0.05 0.08);
  Alcotest.(check bool) "at most doubles per epoch" true (c.Cca.cwnd () <= 2. *. w0 +. 1.)

let test_fast_timeout_resets () =
  let c = Fast_tcp.make () in
  c.Cca.on_loss (loss ~kind:`Timeout 1.);
  check_float "reset" 3000. (c.Cca.cwnd ())

(* ------------------------------------------------------------------ *)
(* Copa                                                                *)
(* ------------------------------------------------------------------ *)

let test_copa_fluid_equilibrium () =
  let p = Copa.default_params in
  let c = Copa.make ~params:p () in
  let rate = Sim.Units.mbps 24. in
  let rtt = fluid_loop c ~c:rate ~rm:0.05 ~rtts:600 in
  let dq = rtt -. 0.05 in
  let expect = Copa.equilibrium_queue_delay p ~rate in
  (* Within the 4-packet oscillation band. *)
  Alcotest.(check bool)
    (Printf.sprintf "queue delay %.4f ~ %.4f" dq expect)
    true
    (Float.abs (dq -. expect) < 4. *. 1500. /. rate)

let test_copa_poisoned_min_rtt_caps_rate () =
  let p = Copa.default_params in
  check_float_eps 1e-9 "equilibrium queue delay formula"
    (1500. /. (0.5 *. 1e6))
    (Copa.equilibrium_queue_delay p ~rate:1e6);
  (* A 1 ms phantom queue caps the target at 1/(delta * 1ms) packets/s. *)
  let c = Copa.make ~params:p () in
  c.Cca.on_ack (ack ~rtt:0.059 0.01);
  for i = 1 to 50 do
    c.Cca.on_ack (ack ~rtt:0.060 (0.02 +. (float_of_int i *. 0.06)))
  done;
  let target =
    match List.assoc_opt "target_pps" (c.Cca.inspect ()) with
    | Some v -> v
    | None -> nan
  in
  check_float_eps 1. "target = 1/(0.5 * 1ms) = 2000 pps" 2000. target

let test_copa_velocity_resets_on_direction_change () =
  let c = Copa.make () in
  (* Build up some state. *)
  for i = 1 to 100 do
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.01))
  done;
  let v = List.assoc "velocity" (c.Cca.inspect ()) in
  Alcotest.(check bool) "velocity >= 1" true (v >= 1.)

let test_copa_velocity_doubles_when_consistent () =
  let c = Copa.make () in
  (* Constant low RTT: the target stays far above the current rate, the
     window climbs every epoch, and after three same-direction epochs the
     velocity starts doubling. *)
  for i = 1 to 60 do
    (* One ack per 50 ms: every ack is its own per-RTT epoch. *)
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.05))
  done;
  let v = List.assoc "velocity" (c.Cca.inspect ()) in
  Alcotest.(check bool) (Printf.sprintf "velocity %.0f >= 4" v) true (v >= 4.)

let test_copa_pacing_set () =
  let c = Copa.make () in
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  match c.Cca.pacing_rate () with
  | Some r -> Alcotest.(check bool) "pacing = 2*cwnd/standing" true (r > 0.)
  | None -> Alcotest.fail "copa should pace"

(* ------------------------------------------------------------------ *)
(* BBR                                                                 *)
(* ------------------------------------------------------------------ *)

let bbr_mode c = List.assoc "mode" (c.Cca.inspect ())

let feed_bbr c ~rtt ~rate_bps ~seconds ~start =
  (* Synthetic steady ACK stream at a given delivery rate. *)
  let dt = 1500. /. rate_bps in
  let n = int_of_float (seconds /. dt) in
  let delivered = ref 0 in
  for i = 0 to n - 1 do
    let now = start +. (float_of_int i *. dt) in
    delivered := !delivered + 1500;
    c.Cca.on_ack
      (ack ~rtt ~delivered:(!delivered - 1500 - int_of_float (rate_bps *. rtt))
         ~delivered_now:!delivered now)
  done

let test_bbr_startup_exits () =
  let c = Bbr.make () in
  check_float "starts in startup" 0. (bbr_mode c);
  feed_bbr c ~rtt:0.05 ~rate_bps:1e6 ~seconds:2. ~start:0.1;
  (* Flat bandwidth for many rounds: full pipe detected, startup left. *)
  Alcotest.(check bool) "left startup" true (bbr_mode c > 0.)

let test_bbr_cwnd_formula () =
  let p = Bbr.default_params in
  let c = Bbr.make ~params:p () in
  feed_bbr c ~rtt:0.05 ~rate_bps:1e6 ~seconds:3. ~start:0.1;
  let bw = List.assoc "btl_bw" (c.Cca.inspect ()) in
  let min_rtt = List.assoc "min_rtt" (c.Cca.inspect ()) in
  if bbr_mode c = 2. then begin
    let expect = (p.Bbr.cwnd_gain *. bw *. min_rtt) +. (p.Bbr.quanta_packets *. 1500.) in
    check_float_eps 1. "cwnd = 2 bdp + quanta" expect (c.Cca.cwnd ())
  end

let test_bbr_no_quanta_cwnd_formula () =
  let p = { Bbr.default_params with enable_quanta = false } in
  let c = Bbr.make ~params:p () in
  feed_bbr c ~rtt:0.05 ~rate_bps:1e6 ~seconds:3. ~start:0.1;
  if bbr_mode c = 2. then begin
    let bw = List.assoc "btl_bw" (c.Cca.inspect ()) in
    let min_rtt = List.assoc "min_rtt" (c.Cca.inspect ()) in
    check_float_eps 1. "cwnd = 2 bdp exactly" (2. *. bw *. min_rtt) (c.Cca.cwnd ())
  end

let test_bbr_quanta_ablation () =
  let with_q = Bbr.make () in
  let without_q =
    Bbr.make ~params:{ Bbr.default_params with enable_quanta = false } ()
  in
  feed_bbr with_q ~rtt:0.05 ~rate_bps:1e6 ~seconds:3. ~start:0.1;
  feed_bbr without_q ~rtt:0.05 ~rate_bps:1e6 ~seconds:3. ~start:0.1;
  Alcotest.(check bool) "quanta adds to cwnd" true
    (with_q.Cca.cwnd () > without_q.Cca.cwnd ())

let test_bbr_max_filter () =
  let c = Bbr.make () in
  feed_bbr c ~rtt:0.05 ~rate_bps:1e6 ~seconds:1. ~start:0.1;
  let bw1 = List.assoc "btl_bw" (c.Cca.inspect ()) in
  (* A burst of faster deliveries raises the max filter. *)
  feed_bbr c ~rtt:0.05 ~rate_bps:2e6 ~seconds:0.5 ~start:1.2;
  let bw2 = List.assoc "btl_bw" (c.Cca.inspect ()) in
  Alcotest.(check bool) "max filter rises" true (bw2 > bw1)

let test_bbr_equilibrium_formulas () =
  let p = Bbr.default_params in
  let alpha = p.Bbr.quanta_packets *. 1500. in
  check_float_eps 1e-9 "rate = alpha/(rtt-2rm)" (alpha /. 0.01)
    (Bbr.equilibrium_rate_cwnd_limited p ~rtt:0.09 ~rm:0.04);
  check_float_eps 1e-9 "rtt = 2rm + n alpha / C"
    (0.08 +. (2. *. alpha /. 1e6))
    (Bbr.equilibrium_rtt_cwnd_limited p ~rate:1e6 ~rm:0.04 ~n_flows:2)

let test_bbr_gain_cycle_visits_probe_and_drain () =
  let c = Bbr.make () in
  feed_bbr c ~rtt:0.05 ~rate_bps:1e6 ~seconds:2. ~start:0.1;
  (* Now in ProbeBW: over the next few seconds the pacing gain must visit
     both the 1.25 probe phase and the 0.75 drain phase. *)
  Alcotest.(check (float 1e-9)) "in probe_bw" 2. (bbr_mode c);
  let seen_probe = ref false and seen_drain = ref false in
  let dt = 1500. /. 1e6 in
  let delivered = ref 1_000_000 in
  for i = 0 to int_of_float (3. /. dt) do
    let now = 2.2 +. (float_of_int i *. dt) in
    delivered := !delivered + 1500;
    c.Cca.on_ack
      (ack ~rtt:0.05 ~delivered:(!delivered - 60_000) ~delivered_now:!delivered now);
    let g = List.assoc "pacing_gain" (c.Cca.inspect ()) in
    if g > 1.2 then seen_probe := true;
    if g < 0.8 then seen_drain := true
  done;
  Alcotest.(check bool) "probe phase seen" true !seen_probe;
  Alcotest.(check bool) "drain phase seen" true !seen_drain

let test_bbr_startup_gain () =
  let c = Bbr.make () in
  c.Cca.on_ack (ack ~rtt:0.05 ~delivered:0 ~delivered_now:1500 0.1);
  Alcotest.(check (float 1e-6)) "startup pacing gain" 2.89
    (List.assoc "pacing_gain" (c.Cca.inspect ()))

let test_bbr_probe_rtt_on_stale_min () =
  let c = Bbr.make () in
  feed_bbr c ~rtt:0.05 ~rate_bps:1e6 ~seconds:3. ~start:0.1;
  (* Now feed higher RTTs for > 10 s so the min filter goes stale. *)
  feed_bbr c ~rtt:0.06 ~rate_bps:1e6 ~seconds:11. ~start:3.5;
  (* Mode should have passed through Probe_rtt (3.) at some point; at least
     the filter must have been refreshed to the higher floor. *)
  let min_rtt = List.assoc "min_rtt" (c.Cca.inspect ()) in
  Alcotest.(check bool) "min rtt refreshed" true (min_rtt >= 0.059)

(* ------------------------------------------------------------------ *)
(* Reno & Cubic                                                        *)
(* ------------------------------------------------------------------ *)

let test_reno_slow_start () =
  let c = Reno.make () in
  let w0 = c.Cca.cwnd () in
  for i = 1 to 10 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  check_float "byte-counted slow start" (w0 +. (10. *. 1500.)) (c.Cca.cwnd ())

let test_reno_halves_on_dupack () =
  let c = Reno.make () in
  for i = 1 to 20 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  let w = c.Cca.cwnd () in
  c.Cca.on_loss (loss 1.);
  check_float_eps 1. "halved" (w /. 2.) (c.Cca.cwnd ())

let test_reno_timeout_to_one_mss () =
  let c = Reno.make () in
  for i = 1 to 20 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  c.Cca.on_loss (loss ~kind:`Timeout 1.);
  check_float "one mss" 1500. (c.Cca.cwnd ())

let test_reno_loss_coalescing () =
  let c = Reno.make () in
  for i = 1 to 20 do
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.01))
  done;
  let w = c.Cca.cwnd () in
  c.Cca.on_loss (loss 1.);
  (* A second loss within one RTT of the first is the same event. *)
  c.Cca.on_loss (loss 1.02);
  check_float_eps 1. "only one halving" (w /. 2.) (c.Cca.cwnd ())

let test_reno_congestion_avoidance_rate () =
  let c =
    Reno.make ~params:{ Reno.default_params with initial_ssthresh = 15000. } ()
  in
  (* Push past ssthresh. *)
  for i = 1 to 10 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  let w = c.Cca.cwnd () in
  (* One window's worth of acks should add about one mss. *)
  let packets = int_of_float (w /. 1500.) in
  for i = 1 to packets do
    c.Cca.on_ack (ack (0.2 +. (float_of_int i *. 0.001)))
  done;
  check_float_eps 160. "one mss per rtt" (w +. 1500.) (c.Cca.cwnd ())

let test_cubic_reduction_factor () =
  let c = Cubic.make () in
  for i = 1 to 30 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  let w = c.Cca.cwnd () in
  c.Cca.on_loss (loss 1.);
  check_float_eps 1. "beta = 0.7" (0.7 *. w) (c.Cca.cwnd ())

let test_cubic_recovers_toward_wmax () =
  let c = Cubic.make () in
  for i = 1 to 30 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  let w_max = c.Cca.cwnd () in
  c.Cca.on_loss (loss 1.);
  (* Feed acks for a while: the window must climb back toward w_max. *)
  for i = 1 to 2000 do
    c.Cca.on_ack (ack ~rtt:0.05 (1.1 +. (float_of_int i *. 0.005)))
  done;
  Alcotest.(check bool) "recovered most of w_max" true (c.Cca.cwnd () > 0.9 *. w_max)

let test_cubic_timeout () =
  let c = Cubic.make () in
  for i = 1 to 30 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  c.Cca.on_loss (loss ~kind:`Timeout 1.);
  check_float "one mss" 1500. (c.Cca.cwnd ())

(* ------------------------------------------------------------------ *)
(* PCC utilities                                                       *)
(* ------------------------------------------------------------------ *)

let test_vivace_utility_monotone_in_rate () =
  let p = Pcc_vivace.default_params in
  let u1 = Pcc_vivace.utility p ~rate_mbps:10. ~rtt_gradient:0. ~loss:0. in
  let u2 = Pcc_vivace.utility p ~rate_mbps:20. ~rtt_gradient:0. ~loss:0. in
  Alcotest.(check bool) "increasing" true (u2 > u1)

let test_vivace_utility_penalizes_latency_slope () =
  let p = Pcc_vivace.default_params in
  let clean = Pcc_vivace.utility p ~rate_mbps:10. ~rtt_gradient:0. ~loss:0. in
  let building = Pcc_vivace.utility p ~rate_mbps:10. ~rtt_gradient:0.01 ~loss:0. in
  let draining = Pcc_vivace.utility p ~rate_mbps:10. ~rtt_gradient:(-0.01) ~loss:0. in
  Alcotest.(check bool) "positive slope penalized" true (building < clean);
  check_float "negative slope not rewarded" clean draining

let test_vivace_utility_penalizes_loss () =
  let p = Pcc_vivace.default_params in
  let clean = Pcc_vivace.utility p ~rate_mbps:10. ~rtt_gradient:0. ~loss:0. in
  let lossy = Pcc_vivace.utility p ~rate_mbps:10. ~rtt_gradient:0. ~loss:0.05 in
  Alcotest.(check bool) "loss penalized" true (lossy < clean)

let test_allegro_utility_cliff () =
  let p = Pcc_allegro.default_params in
  let below = Pcc_allegro.utility p ~rate_mbps:10. ~loss:0.02 in
  let above = Pcc_allegro.utility p ~rate_mbps:10. ~loss:0.10 in
  Alcotest.(check bool) "below threshold positive" true (below > 0.);
  Alcotest.(check bool) "above threshold negative" true (above < 0.);
  (* And below threshold, utility still grows with rate. *)
  let below2 = Pcc_allegro.utility p ~rate_mbps:20. ~loss:0.02 in
  Alcotest.(check bool) "grows with rate under threshold" true (below2 > below)

let test_pcc_timers_advance () =
  List.iter
    (fun c ->
      match c.Cca.next_timer () with
      | None -> Alcotest.fail "PCC CCAs are timer-driven"
      | Some t0 ->
          c.Cca.on_timer t0;
          (match c.Cca.next_timer () with
          | Some t1 -> Alcotest.(check bool) "timer advances" true (t1 > t0)
          | None -> Alcotest.fail "timer vanished"))
    [ Pcc_vivace.make (); Pcc_allegro.make () ]

(* ------------------------------------------------------------------ *)
(* LEDBAT                                                              *)
(* ------------------------------------------------------------------ *)

let test_ledbat_fluid_equilibrium () =
  let p = Ledbat.default_params in
  let c = Ledbat.make ~params:p () in
  let rate = Sim.Units.mbps 12. in
  let rtt = fluid_loop c ~c:rate ~rm:0.05 ~rtts:600 in
  let expect = Ledbat.equilibrium_rtt p ~rate ~rm:0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "rtt %.4f ~ %.4f" rtt expect)
    true
    (Float.abs (rtt -. expect) < 0.004)

let test_ledbat_slow_start_exits_at_target () =
  let p = Ledbat.default_params in
  let c = Ledbat.make ~params:p () in
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  Alcotest.(check (float 1e-9)) "in slow start" 1.
    (List.assoc "slow_start" (c.Cca.inspect ()));
  (* Queueing at the target ends slow start. *)
  c.Cca.on_ack (ack ~rtt:(0.05 +. p.Ledbat.target) 0.02);
  Alcotest.(check (float 1e-9)) "left slow start" 0.
    (List.assoc "slow_start" (c.Cca.inspect ()))

let test_ledbat_decreases_above_target () =
  let p = Ledbat.default_params in
  let c =
    Ledbat.make ~params:{ p with init_cwnd_packets = 100. } ()
  in
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  (* Far above target: off_target < 0, the window must shrink. *)
  c.Cca.on_ack (ack ~rtt:(0.05 +. (3. *. p.Ledbat.target)) 0.02);
  let w1 = c.Cca.cwnd () in
  c.Cca.on_ack (ack ~rtt:(0.05 +. (3. *. p.Ledbat.target)) 0.03);
  Alcotest.(check bool) "decreasing" true (c.Cca.cwnd () < w1)

let test_ledbat_loss_halves () =
  let c = Ledbat.make ~params:{ Ledbat.default_params with init_cwnd_packets = 40. } () in
  c.Cca.on_ack (ack ~rtt:0.05 0.01);
  let w = c.Cca.cwnd () in
  c.Cca.on_loss (loss 1.);
  check_float_eps 1. "halved" (w /. 2.) (c.Cca.cwnd ())

(* ------------------------------------------------------------------ *)
(* ECN-Reno                                                            *)
(* ------------------------------------------------------------------ *)

let test_ecn_reno_halves_on_ce () =
  let c = Ecn_reno.make () in
  for i = 1 to 20 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  let w = c.Cca.cwnd () in
  c.Cca.on_ack (ack ~ecn_ce:true 0.5);
  check_float_eps 1. "halved on CE" (w /. 2.) (c.Cca.cwnd ())

let test_ecn_reno_ce_coalesces () =
  let c = Ecn_reno.make () in
  for i = 1 to 20 do
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.01))
  done;
  let w = c.Cca.cwnd () in
  c.Cca.on_ack (ack ~ecn_ce:true ~rtt:0.05 0.5);
  c.Cca.on_ack (ack ~ecn_ce:true ~rtt:0.05 0.51);
  check_float_eps 1. "one halving per RTT" (w /. 2.) (c.Cca.cwnd ())

let test_ecn_reno_ignores_small_loss () =
  let c = Ecn_reno.make () in
  (* Plenty of sends so the loss fraction is well measured. *)
  for i = 1 to 300 do
    c.Cca.on_send { Cca.now = float_of_int i *. 0.001; sent_bytes = 1500;
                    inflight = 1500 };
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.001))
  done;
  let w = c.Cca.cwnd () in
  (* 1 loss out of 300 sent ~ 0.3% < 5%: must be ignored. *)
  c.Cca.on_loss (loss 0.5);
  Alcotest.(check bool) "no reduction" true (c.Cca.cwnd () >= w)

let test_ecn_reno_reacts_to_heavy_loss () =
  let c = Ecn_reno.make () in
  for i = 1 to 200 do
    c.Cca.on_send { Cca.now = float_of_int i *. 0.0001; sent_bytes = 1500;
                    inflight = 1500 };
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.0001))
  done;
  let w = c.Cca.cwnd () in
  (* 30 losses out of 200 = 15% > 5%: must halve. *)
  let t = ref 0.021 in
  for _ = 1 to 30 do
    t := !t +. 0.00001;
    c.Cca.on_loss (loss !t)
  done;
  Alcotest.(check bool) "reduced" true (c.Cca.cwnd () < w)

let test_ecn_reno_tolerance_param () =
  (* With tolerance 0 every dup-ack loss reacts, like plain Reno. *)
  let c =
    Ecn_reno.make ~params:{ Ecn_reno.default_params with loss_tolerance = 0. } ()
  in
  for i = 1 to 150 do
    c.Cca.on_send { Cca.now = float_of_int i *. 0.001; sent_bytes = 1500;
                    inflight = 1500 };
    c.Cca.on_ack (ack ~rtt:0.05 (float_of_int i *. 0.001))
  done;
  let w = c.Cca.cwnd () in
  (* Within the same accounting window as the sends. *)
  c.Cca.on_loss (loss 0.155);
  Alcotest.(check bool) "reacts to a single loss" true (c.Cca.cwnd () < w)

let test_ecn_reno_timeout () =
  let c = Ecn_reno.make () in
  for i = 1 to 20 do
    c.Cca.on_ack (ack (float_of_int i *. 0.01))
  done;
  c.Cca.on_loss (loss ~kind:`Timeout 1.);
  check_float "one mss" 1500. (c.Cca.cwnd ())

(* ------------------------------------------------------------------ *)
(* Algorithm 1                                                         *)
(* ------------------------------------------------------------------ *)

let test_alg1_curve_endpoints () =
  let p = Alg1.default_params in
  (* At d = rm + rmax the curve hits mu_minus. *)
  check_float_eps 1e-6 "mu(rm+rmax) = mu-" p.Alg1.mu_minus
    (Alg1.target_rate p ~d:(p.Alg1.rm +. p.Alg1.rmax));
  (* Delays D apart give rates s apart. *)
  let d = p.Alg1.rm +. 0.05 in
  let r1 = Alg1.target_rate p ~d in
  let r2 = Alg1.target_rate p ~d:(d +. p.Alg1.d_jitter) in
  check_float_eps 1e-6 "s-spacing" p.Alg1.s (r1 /. r2)

let test_alg1_rate_range () =
  let p = Alg1.default_params in
  (* D = 10 ms, s = 2, Rmax = 100 ms: the paper's ~2^9 example. *)
  check_float_eps 1e-6 "range = s^((rmax-D)/D)" (2. ** 9.) (Alg1.rate_range p);
  check_float_eps 1e-3 "mu+ = mu- * range" (p.Alg1.mu_minus *. Alg1.rate_range p)
    (Alg1.mu_plus p)

let test_alg1_aimd () =
  let p = { Alg1.default_params with init_rate = Alg1.default_params.mu_minus } in
  let c = Alg1.make ~params:p () in
  (* Low delay: below threshold, rate climbs additively. *)
  c.Cca.on_ack (ack ~rtt:p.Alg1.rm 0.01);
  let r0 = List.assoc "rate" (c.Cca.inspect ()) in
  c.Cca.on_timer 0.05;
  let r1 = List.assoc "rate" (c.Cca.inspect ()) in
  check_float "additive step" (r0 +. p.Alg1.a) r1;
  (* Huge delay: above threshold, rate multiplies down. *)
  c.Cca.on_ack (ack ~rtt:(p.Alg1.rm +. p.Alg1.rmax +. 0.05) 0.1);
  c.Cca.on_timer 0.1;
  let r2 = List.assoc "rate" (c.Cca.inspect ()) in
  check_float_eps 1e-6 "multiplicative decrease" (Float.max (p.Alg1.b *. r1) p.Alg1.mu_minus) r2

let test_alg1_floor () =
  let p = { Alg1.default_params with init_rate = Alg1.default_params.mu_minus } in
  let c = Alg1.make ~params:p () in
  c.Cca.on_ack (ack ~rtt:10. 0.01);
  for i = 1 to 50 do
    c.Cca.on_timer (float_of_int i *. p.Alg1.rm)
  done;
  let r = List.assoc "rate" (c.Cca.inspect ()) in
  check_float "never below mu-" p.Alg1.mu_minus r

let prop_alg1_curve_monotone =
  QCheck.Test.make ~name:"alg1 rate-delay curve decreases in delay" ~count:200
    QCheck.(pair (float_range 0.0 0.1) (float_range 0.0 0.1))
    (fun (a, b) ->
      let p = Alg1.default_params in
      let d1 = p.Alg1.rm +. Float.min a b and d2 = p.Alg1.rm +. Float.max a b in
      Alg1.target_rate p ~d:d1 >= Alg1.target_rate p ~d:d2 -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Fuzz: control outputs stay sane under arbitrary event sequences      *)
(* ------------------------------------------------------------------ *)

type fuzz_event = Fz_ack of float * int | Fz_loss of bool | Fz_timer

let fuzz_event_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun rtt bytes -> Fz_ack (rtt, bytes))
             (float_range 0.001 0.5) (int_range 1 9000));
        (2, map (fun timeout -> Fz_loss timeout) bool);
        (2, return Fz_timer);
      ])

let fuzz_arb =
  QCheck.make
    ~print:(fun evs -> Printf.sprintf "<%d events>" (List.length evs))
    QCheck.Gen.(list_size (int_range 1 300) fuzz_event_gen)

let all_ccas () =
  [
    Vegas.make ();
    Fast_tcp.make ();
    Copa.make ();
    Ledbat.make ();
    Bbr.make ();
    Pcc_vivace.make ();
    Pcc_allegro.make ();
    Reno.make ();
    Cubic.make ();
    Ecn_reno.make ();
    Alg1.make ();
    Const_cwnd.make ();
  ]

let sane c =
  let w = c.Cca.cwnd () in
  (w > 0. && not (Float.is_nan w))
  && (match c.Cca.pacing_rate () with
     | Some r -> r >= 0. && not (Float.is_nan r)
     | None -> true)
  && (match c.Cca.next_timer () with
     | Some t -> not (Float.is_nan t)
     | None -> true)

let prop_cca_fuzz =
  QCheck.Test.make ~name:"every CCA stays sane under arbitrary event streams"
    ~count:60 fuzz_arb
    (fun events ->
      List.for_all
        (fun c ->
          let now = ref 0.1 in
          let inflight = ref 30000 in
          List.iter
            (fun ev ->
              now := !now +. 0.001;
              (match ev with
              | Fz_ack (rtt, bytes) ->
                  c.Cca.on_ack (ack ~rtt ~bytes ~inflight:!inflight !now)
              | Fz_loss timeout ->
                  c.Cca.on_loss
                    (loss ~kind:(if timeout then `Timeout else `Dupack)
                       ~packets:[ (!now -. 0.05, 1500) ]
                       !now)
              | Fz_timer -> (
                  match c.Cca.next_timer () with
                  | Some t when t <= !now -> c.Cca.on_timer !now
                  | Some _ | None -> ()));
              if not (sane c) then
                QCheck.Test.fail_reportf "%s went insane: cwnd=%f" c.Cca.name
                  (c.Cca.cwnd ()))
            events;
          sane c)
        (all_ccas ()))

(* ------------------------------------------------------------------ *)
(* Columnar CCA state: arena recycling and trace equivalence            *)
(* ------------------------------------------------------------------ *)

let test_columns_recycling () =
  let c = Columns.create ~capacity:2 ~nfields:3 () in
  let r0 = Columns.alloc c in
  let _r1 = Columns.alloc c in
  Alcotest.(check int) "rows" 2 (Columns.rows c);
  Columns.set c r0 0 5.;
  Columns.set c r0 2 7.;
  Columns.free c r0;
  Alcotest.(check int) "live" 1 (Columns.live c);
  let r2 = Columns.alloc c in
  Alcotest.(check int) "freed row is recycled" r0 r2;
  check_float "recycled row zeroed" 0. (Columns.get c r2 0);
  check_float "recycled row zeroed (last field)" 0. (Columns.get c r2 2);
  Alcotest.(check int) "no new rows" 2 (Columns.rows c);
  (* Churn: with a free row available, repeated alloc/free must neither
     add rows nor grow the arena. *)
  Columns.free c r2;
  let cap = Columns.capacity c in
  for _ = 1 to 1_000 do
    Columns.free c (Columns.alloc c)
  done;
  Alcotest.(check int) "capacity stable under churn" cap (Columns.capacity c);
  Alcotest.(check int) "rows stable under churn" 2 (Columns.rows c)

let bits = Int64.bits_of_float

(* Apply one fuzz event to a CCA at time [now]. *)
let apply_fuzz c ~now ev =
  match ev with
  | Fz_ack (rtt, bytes) -> c.Cca.on_ack (ack ~rtt ~bytes now)
  | Fz_loss timeout ->
      c.Cca.on_loss
        (loss
           ~kind:(if timeout then `Timeout else `Dupack)
           ~packets:[ (now -. 0.05, 1500) ]
           now)
  | Fz_timer -> (
      match c.Cca.next_timer () with
      | Some t when t <= now -> c.Cca.on_timer now
      | Some _ | None -> ())

let drive_one c events =
  let now = ref 0.1 in
  List.iter
    (fun ev ->
      now := !now +. 0.001;
      apply_fuzz c ~now:!now ev)
    events

(* Feed both instances the same stream; cwnd and pacing must stay
   bit-identical after every event — the contract that makes columnar
   census cells byte-identical to the boxed baseline. *)
let drive_pair ~name a b events =
  let now = ref 0.1 in
  List.iter
    (fun ev ->
      now := !now +. 0.001;
      apply_fuzz a ~now:!now ev;
      apply_fuzz b ~now:!now ev;
      let wa = a.Cca.cwnd () and wb = b.Cca.cwnd () in
      if bits wa <> bits wb then
        QCheck.Test.fail_reportf "%s cwnd diverged: %h <> %h" name wa wb;
      match (a.Cca.pacing_rate (), b.Cca.pacing_rate ()) with
      | None, None -> ()
      | Some ra, Some rb when bits ra = bits rb -> ()
      | _ -> QCheck.Test.fail_reportf "%s pacing rate diverged" name)
    events;
  true

let prop_reno_columnar_trace_equiv =
  QCheck.Test.make ~name:"columnar Reno is trace-equivalent to boxed" ~count:80
    fuzz_arb
    (fun events ->
      let cols = Columns.create ~nfields:Reno.nfields () in
      drive_pair ~name:"reno" (Reno.make ()) (Reno.make_in cols).Cca.cca events)

let prop_copa_columnar_trace_equiv =
  QCheck.Test.make ~name:"columnar Copa is trace-equivalent to boxed" ~count:80
    fuzz_arb
    (fun events ->
      let cols = Columns.create ~nfields:Copa.nfields () in
      drive_pair ~name:"copa" (Copa.make ()) (Copa.make_in cols).Cca.cca events)

let prop_vegas_columnar_trace_equiv =
  QCheck.Test.make ~name:"columnar Vegas is trace-equivalent to boxed"
    ~count:80 fuzz_arb
    (fun events ->
      let cols = Columns.create ~nfields:Vegas.nfields () in
      drive_pair ~name:"vegas" (Vegas.make ())
        (Vegas.make_in cols).Cca.cca events)

(* The churn contract: a reset columnar instance must be indistinguishable
   from a freshly built one even after an arbitrary first incarnation. *)
let prop_columnar_reset_equals_fresh =
  QCheck.Test.make ~name:"reset columnar instance equals a fresh instance"
    ~count:60
    QCheck.(pair fuzz_arb fuzz_arb)
    (fun (warmup, events) ->
      List.for_all
        (fun (name, fresh, inst) ->
          drive_one inst.Cca.cca warmup;
          (match inst.Cca.reset with
          | Some r -> r ()
          | None -> QCheck.Test.fail_reportf "%s: columnar without reset" name);
          drive_pair ~name inst.Cca.cca (fresh ()) events)
        [
          ( "reno",
            (fun () -> Reno.make ()),
            Reno.make_in (Columns.create ~nfields:Reno.nfields ()) );
          ( "copa",
            (fun () -> Copa.make ()),
            Copa.make_in (Columns.create ~nfields:Copa.nfields ()) );
          ( "vegas",
            (fun () -> Vegas.make ()),
            Vegas.make_in (Columns.create ~nfields:Vegas.nfields ()) );
        ])

let () =
  Alcotest.run "cca"
    [
      ( "window",
        [
          Alcotest.test_case "min" `Quick test_extremum_min;
          Alcotest.test_case "max" `Quick test_extremum_max;
          Alcotest.test_case "eviction" `Quick test_extremum_eviction;
          Alcotest.test_case "empty" `Quick test_extremum_empty;
          Alcotest.test_case "window change" `Quick test_extremum_window_change;
          Alcotest.test_case "ewma" `Quick test_ewma;
          qt prop_extremum_matches_naive;
        ] );
      ( "basics",
        [
          Alcotest.test_case "mini rng" `Quick test_mini_rng;
          Alcotest.test_case "bandwidth sample" `Quick test_bandwidth_sample;
          Alcotest.test_case "bandwidth degenerate" `Quick test_bandwidth_sample_degenerate;
          Alcotest.test_case "stub" `Quick test_stub;
        ] );
      ( "mi_ledger",
        [
          Alcotest.test_case "attribution" `Quick test_ledger_attribution;
          Alcotest.test_case "loss attribution" `Quick test_ledger_loss_attribution;
          Alcotest.test_case "grace" `Quick test_ledger_grace;
          Alcotest.test_case "filler hidden" `Quick test_ledger_filler_hidden;
          Alcotest.test_case "rtt slope" `Quick test_ledger_slope;
          Alcotest.test_case "current rate" `Quick test_ledger_current_rate;
          Alcotest.test_case "out-of-range ack" `Quick test_ledger_out_of_range_ack_ignored;
          Alcotest.test_case "completion order" `Quick test_ledger_completion_order;
        ] );
      ( "vegas",
        [
          Alcotest.test_case "slow start" `Quick test_vegas_slow_start_doubles;
          Alcotest.test_case "gamma exit" `Quick test_vegas_gamma_exit;
          Alcotest.test_case "decrease on queue" `Quick test_vegas_decreases_when_queue_high;
          Alcotest.test_case "fluid equilibrium" `Quick test_vegas_fluid_equilibrium;
          Alcotest.test_case "timeout" `Quick test_vegas_timeout_resets;
          Alcotest.test_case "equilibrium formula" `Quick test_vegas_equilibrium_rtt_formula;
        ] );
      ( "fast",
        [
          Alcotest.test_case "fluid equilibrium" `Quick test_fast_fluid_equilibrium;
          Alcotest.test_case "alpha scales queue" `Quick test_fast_alpha_scales_queue;
          Alcotest.test_case "doubling cap" `Quick test_fast_cap_doubling;
          Alcotest.test_case "timeout" `Quick test_fast_timeout_resets;
        ] );
      ( "copa",
        [
          Alcotest.test_case "fluid equilibrium" `Quick test_copa_fluid_equilibrium;
          Alcotest.test_case "poisoned min rtt" `Quick test_copa_poisoned_min_rtt_caps_rate;
          Alcotest.test_case "velocity" `Quick test_copa_velocity_resets_on_direction_change;
          Alcotest.test_case "velocity doubles" `Quick test_copa_velocity_doubles_when_consistent;
          Alcotest.test_case "pacing" `Quick test_copa_pacing_set;
        ] );
      ( "bbr",
        [
          Alcotest.test_case "startup exits" `Quick test_bbr_startup_exits;
          Alcotest.test_case "cwnd formula" `Quick test_bbr_cwnd_formula;
          Alcotest.test_case "quanta ablation" `Quick test_bbr_quanta_ablation;
          Alcotest.test_case "no-quanta formula" `Quick test_bbr_no_quanta_cwnd_formula;
          Alcotest.test_case "max filter" `Quick test_bbr_max_filter;
          Alcotest.test_case "gain cycle" `Quick test_bbr_gain_cycle_visits_probe_and_drain;
          Alcotest.test_case "startup gain" `Quick test_bbr_startup_gain;
          Alcotest.test_case "equilibrium formulas" `Quick test_bbr_equilibrium_formulas;
          Alcotest.test_case "probe rtt refresh" `Quick test_bbr_probe_rtt_on_stale_min;
        ] );
      ( "reno",
        [
          Alcotest.test_case "slow start" `Quick test_reno_slow_start;
          Alcotest.test_case "halves on dupack" `Quick test_reno_halves_on_dupack;
          Alcotest.test_case "timeout" `Quick test_reno_timeout_to_one_mss;
          Alcotest.test_case "loss coalescing" `Quick test_reno_loss_coalescing;
          Alcotest.test_case "ca growth rate" `Quick test_reno_congestion_avoidance_rate;
        ] );
      ( "cubic",
        [
          Alcotest.test_case "beta reduction" `Quick test_cubic_reduction_factor;
          Alcotest.test_case "recovers to wmax" `Quick test_cubic_recovers_toward_wmax;
          Alcotest.test_case "timeout" `Quick test_cubic_timeout;
        ] );
      ( "pcc",
        [
          Alcotest.test_case "vivace utility rate" `Quick test_vivace_utility_monotone_in_rate;
          Alcotest.test_case "vivace utility latency" `Quick
            test_vivace_utility_penalizes_latency_slope;
          Alcotest.test_case "vivace utility loss" `Quick test_vivace_utility_penalizes_loss;
          Alcotest.test_case "allegro utility cliff" `Quick test_allegro_utility_cliff;
          Alcotest.test_case "timers advance" `Quick test_pcc_timers_advance;
        ] );
      ( "ledbat",
        [
          Alcotest.test_case "fluid equilibrium" `Quick test_ledbat_fluid_equilibrium;
          Alcotest.test_case "slow start exit" `Quick test_ledbat_slow_start_exits_at_target;
          Alcotest.test_case "decrease above target" `Quick test_ledbat_decreases_above_target;
          Alcotest.test_case "loss halves" `Quick test_ledbat_loss_halves;
        ] );
      ( "ecn_reno",
        [
          Alcotest.test_case "halves on ce" `Quick test_ecn_reno_halves_on_ce;
          Alcotest.test_case "ce coalesces" `Quick test_ecn_reno_ce_coalesces;
          Alcotest.test_case "ignores small loss" `Quick test_ecn_reno_ignores_small_loss;
          Alcotest.test_case "reacts to heavy loss" `Quick test_ecn_reno_reacts_to_heavy_loss;
          Alcotest.test_case "tolerance param" `Quick test_ecn_reno_tolerance_param;
          Alcotest.test_case "timeout" `Quick test_ecn_reno_timeout;
        ] );
      ( "alg1",
        [
          Alcotest.test_case "curve endpoints" `Quick test_alg1_curve_endpoints;
          Alcotest.test_case "rate range" `Quick test_alg1_rate_range;
          Alcotest.test_case "aimd" `Quick test_alg1_aimd;
          Alcotest.test_case "floor" `Quick test_alg1_floor;
          qt prop_alg1_curve_monotone;
        ] );
      ( "columnar",
        [
          Alcotest.test_case "arena recycling" `Quick test_columns_recycling;
          qt prop_reno_columnar_trace_equiv;
          qt prop_copa_columnar_trace_equiv;
          qt prop_vegas_columnar_trace_equiv;
          qt prop_columnar_reset_equals_fresh;
        ] );
      ("fuzz", [ qt prop_cca_fuzz ]);
    ]
