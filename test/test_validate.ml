(* The validation layer validated: the oracles must pass on the honest
   simulator and fail on a deliberately broken one.  The injected-bug
   test is the load-bearing one — an oracle suite that has never caught
   a planted bug proves nothing. *)

let check_all_ok label verdicts =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (label ^ ": " ^ Validate.Oracle.to_string v)
        true v.Validate.Oracle.ok)
    verdicts;
  Alcotest.(check bool) (label ^ ": non-empty") true (verdicts <> [])

(* ------------------------------------------------------------------ *)
(* Oracle verdict records                                              *)
(* ------------------------------------------------------------------ *)

let test_oracle_check_bands () =
  let v =
    Validate.Oracle.check ~oracle:"o" ~scenario:"s" ~expected:10.
      ~observed:10.4 ~tolerance:0.5 ()
  in
  Alcotest.(check bool) "inside band" true v.Validate.Oracle.ok;
  let v =
    Validate.Oracle.check ~oracle:"o" ~scenario:"s" ~expected:10.
      ~observed:10.6 ~tolerance:0.5 ()
  in
  Alcotest.(check bool) "outside band" false v.Validate.Oracle.ok;
  let v =
    Validate.Oracle.check ~oracle:"o" ~scenario:"s" ~expected:Float.nan
      ~observed:1. ~tolerance:infinity ()
  in
  Alcotest.(check bool) "nan never passes" false v.Validate.Oracle.ok

let test_oracle_exact_and_json () =
  let v =
    Validate.Oracle.exact ~oracle:"rescale" ~scenario:"s" ~expected:2.
      ~observed:2. ()
  in
  Alcotest.(check bool) "bitwise equal passes" true v.Validate.Oracle.ok;
  let v' =
    Validate.Oracle.exact ~oracle:"rescale" ~scenario:"s" ~expected:2.
      ~observed:(Float.succ 2.) ()
  in
  Alcotest.(check bool) "one ulp fails" false v'.Validate.Oracle.ok;
  Alcotest.(check bool) "failures isolates the failure" true
    (Validate.Oracle.failures [ v; v' ] = [ v' ]);
  Alcotest.(check bool) "all_ok false" false (Validate.Oracle.all_ok [ v; v' ]);
  let json = Validate.Oracle.to_json v in
  List.iter
    (fun needle ->
      let found =
        let n = String.length needle in
        let rec scan i =
          i + n <= String.length json
          && (String.sub json i n = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) ("json has " ^ needle) true found)
    [ "\"oracle\""; "\"scenario\""; "\"expected\""; "\"observed\""; "\"ok\"" ]

(* ------------------------------------------------------------------ *)
(* Analytic queueing oracles                                           *)
(* ------------------------------------------------------------------ *)

(* Short horizons keep the suite fast; the z=5 autocorrelation-inflated
   bands widen accordingly, so this is not a weaker check — just a
   noisier instrument with honestly wider error bars. *)
let quick spec = { spec with Validate.Queueing.horizon = 90.; warmup = 10. }

let test_mm1_within_bands () =
  let rng = Sim.Rng.create ~seed:1 in
  check_all_ok "mm1"
    (Validate.Queueing.verdicts ~rng (quick Validate.Queueing.mm1_default))

let test_md1_within_bands () =
  let rng = Sim.Rng.create ~seed:2 in
  check_all_ok "md1"
    (Validate.Queueing.verdicts ~rng (quick Validate.Queueing.md1_default))

(* ------------------------------------------------------------------ *)
(* Conservation + equilibrium oracles                                  *)
(* ------------------------------------------------------------------ *)

let faulty_config () =
  let rate = Sim.Units.mbps 12. in
  Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.04
    ~buffer:90_000 ~initial_queue_bytes:40_000 ~monitor_period:0.05
    ~faults:
      (Sim.Fault.plan
         [ Sim.Fault.Link_blackout { t0 = 2.; t1 = 2.3 };
           Sim.Fault.Rate_step { at = 4.; rate = rate /. 2. } ])
    ~duration:6.
    [ Sim.Network.flow ~loss_rate:0.005 (Reno.make ());
      Sim.Network.flow (Vegas.make ()) ]

let test_conservation_on_faulty_run () =
  let net = Sim.Network.run_config (faulty_config ()) in
  check_all_ok "conservation"
    (Validate.Conservation.verdicts ~scenario:"faulty" net)

let test_equilibria () = check_all_ok "equilibrium" (Validate.Equilibrium.all ())

(* ------------------------------------------------------------------ *)
(* Metamorphic matrix                                                  *)
(* ------------------------------------------------------------------ *)

let test_metamorphic_matrix () =
  check_all_ok "metamorphic" (Validate.Metamorphic.all ())

(* ------------------------------------------------------------------ *)
(* Fuzzing                                                             *)
(* ------------------------------------------------------------------ *)

let test_fuzz_clean () =
  let report = Validate.Fuzz.run ~seed:1 ~n:6 () in
  Alcotest.(check int) "samples" 6 report.Validate.Fuzz.samples;
  Alcotest.(check bool) "verdicts checked" true
    (report.Validate.Fuzz.verdicts_checked >= 6 * 5);
  Alcotest.(check (list string)) "no violations" []
    (List.map
       (fun v -> v.Validate.Fuzz.summary)
       report.Validate.Fuzz.violations)

let test_fuzz_determinism () =
  (* Same (seed, id) twice from scratch: identical verdict records. *)
  let a, sa = Validate.Fuzz.check_sample ~seed:9 ~id:0 () in
  let b, sb = Validate.Fuzz.check_sample ~seed:9 ~id:0 () in
  Alcotest.(check string) "summary stable" sa sb;
  Alcotest.(check (list string)) "verdicts stable"
    (List.map Validate.Oracle.to_string a)
    (List.map Validate.Oracle.to_string b)

(* The acceptance test for the whole layer: plant an off-by-one in the
   link's aggregate byte accounting (one extra byte per serviced packet,
   behind the test-only hook) and demand that fuzzing (a) notices, (b)
   shrinks the offender to a minimal reproducer, and (c) persists a
   replayable corpus entry. *)
let test_fuzz_catches_injected_accounting_bug () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ccstarve-fuzz-test-%d" (Unix.getpid ()))
  in
  Sim.Link.set_accounting_skew 1;
  Fun.protect
    ~finally:(fun () -> Sim.Link.set_accounting_skew 0)
    (fun () ->
      let report = Validate.Fuzz.run ~dir ~seed:1 ~n:3 () in
      let violations = report.Validate.Fuzz.violations in
      Alcotest.(check bool) "bug caught" true (violations <> []);
      List.iter
        (fun v ->
          let oracles =
            List.map
              (fun f -> f.Validate.Oracle.oracle)
              v.Validate.Fuzz.failing
          in
          Alcotest.(check bool)
            ("a conservation oracle fired: "
            ^ String.concat ", " oracles)
            true
            (List.exists
               (fun o ->
                 o = "link-conservation" || o = "link-flow-conservation"
                 || o = "invariant-violations")
               oracles);
          (match v.Validate.Fuzz.shrunk with
          | None -> Alcotest.fail "violation was not shrunk"
          | Some d ->
              Alcotest.(check bool) ("shrunk: " ^ d) true (String.length d > 0));
          match v.Validate.Fuzz.repro_path with
          | None -> Alcotest.fail "no reproducer persisted"
          | Some p ->
              Alcotest.(check bool) ("repro exists: " ^ p) true (Sys.file_exists p);
              (* The reproducer must still trip while the bug is in. *)
              let r = Sim.Shrink.load_repro p in
              Alcotest.(check bool) "reproducer replays the violation" true
                (Sim.Shrink.trips ~monitor_period:0.05
                   (Sim.Shrink.copy_config r.Sim.Shrink.config)
                 <> []))
        violations)

let test_fuzz_report_json () =
  let report = Validate.Fuzz.run ~seed:4 ~n:2 () in
  let json = Validate.Fuzz.report_to_json report in
  Alcotest.(check bool) "mentions seed" true
    (String.length json > 0 && json.[0] = '{');
  List.iter
    (fun needle ->
      let n = String.length needle in
      let rec scan i =
        i + n <= String.length json
        && (String.sub json i n = needle || scan (i + 1))
      in
      Alcotest.(check bool) ("json has " ^ needle) true (scan 0))
    [ "\"seed\""; "\"samples\""; "\"verdicts_checked\""; "\"violations\"" ]

let () =
  Alcotest.run "validate"
    [
      ( "oracle",
        [
          Alcotest.test_case "bands" `Quick test_oracle_check_bands;
          Alcotest.test_case "exact and json" `Quick test_oracle_exact_and_json;
        ] );
      ( "queueing",
        [
          Alcotest.test_case "mm1" `Quick test_mm1_within_bands;
          Alcotest.test_case "md1" `Quick test_md1_within_bands;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "faulty run" `Quick test_conservation_on_faulty_run;
        ] );
      ( "equilibrium", [ Alcotest.test_case "all" `Quick test_equilibria ] );
      ( "metamorphic",
        [ Alcotest.test_case "matrix" `Quick test_metamorphic_matrix ] );
      ( "fuzz",
        [
          Alcotest.test_case "clean" `Quick test_fuzz_clean;
          Alcotest.test_case "deterministic" `Quick test_fuzz_determinism;
          Alcotest.test_case "catches injected bug" `Quick
            test_fuzz_catches_injected_accounting_bug;
          Alcotest.test_case "report json" `Quick test_fuzz_report_json;
        ] );
    ]
