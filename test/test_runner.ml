(* Tests for the parallel job runner: pool determinism across worker
   counts, stdout capture and replay, the on-disk cache, and failure
   handling (job exceptions, crashed workers, timeouts). *)

let job i =
  Runner.Job.create
    ~key:(Printf.sprintf "t/sq/%d" i)
    (fun () ->
      Printf.printf "job %d starts\n" i;
      print_string (String.concat "" (List.init (i mod 3) (fun _ -> ".")));
      Printf.printf "\njob %d done\n" i;
      i * i)

let jobs n = List.init n job

let decoded results =
  List.map (fun (out, b) -> (out, (Runner.Job.decode b : int))) results

let fresh_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s_%d_%.0f" prefix (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  (* Cache.create makes the directory itself. *)
  d

let rec rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then rm_rf p else Sys.remove p)
      (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ------------------------------------------------------------------ *)
(* Serial execution                                                    *)
(* ------------------------------------------------------------------ *)

let test_serial_order_and_stats () =
  let results, stats = Runner.Pool.run (jobs 7) in
  let vals = List.map snd (decoded results) in
  Alcotest.(check (list int)) "results in job order"
    [ 0; 1; 4; 9; 16; 25; 36 ] vals;
  Alcotest.(check int) "jobs" 7 stats.Runner.Pool.jobs;
  Alcotest.(check int) "executed" 7 stats.Runner.Pool.executed;
  Alcotest.(check int) "cache hits" 0 stats.Runner.Pool.cache_hits;
  Alcotest.(check int) "respawns" 0 stats.Runner.Pool.respawns

let test_serial_captures_stdout () =
  let results, _ = Runner.Pool.run [ job 5 ] in
  match results with
  | [ (out, _) ] ->
      Alcotest.(check string) "captured text" "job 5 starts\n..\njob 5 done\n" out
  | _ -> Alcotest.fail "expected one result"

(* ------------------------------------------------------------------ *)
(* Parallel execution                                                  *)
(* ------------------------------------------------------------------ *)

let test_parallel_matches_serial () =
  let serial, _ = Runner.Pool.run (jobs 20) in
  let parallel, stats = Runner.Pool.run ~workers:4 (jobs 20) in
  Alcotest.(check (list (pair string int)))
    "same (stdout, result) in same order" (decoded serial) (decoded parallel);
  Alcotest.(check int) "executed" 20 stats.Runner.Pool.executed;
  Alcotest.(check int) "respawns" 0 stats.Runner.Pool.respawns

let test_more_workers_than_jobs () =
  let results, stats = Runner.Pool.run ~workers:16 (jobs 3) in
  Alcotest.(check (list int)) "results" [ 0; 1; 4 ]
    (List.map snd (decoded results));
  Alcotest.(check int) "executed" 3 stats.Runner.Pool.executed

let test_empty_job_list () =
  let results, stats = Runner.Pool.run ~workers:4 [] in
  Alcotest.(check int) "no results" 0 (List.length results);
  Alcotest.(check int) "no jobs" 0 stats.Runner.Pool.jobs

(* ------------------------------------------------------------------ *)
(* Domain backend                                                      *)
(* ------------------------------------------------------------------ *)

(* The domain backend serves silent jobs; payloads must match the fork
   and serial paths result-for-result, in job order. *)
let silent_job i =
  Runner.Job.create ~key:(Printf.sprintf "t/silent/%d" i) (fun () -> i * i + 1)

let silent_jobs n = List.init n silent_job

let test_domain_matches_fork () =
  let serial, _ = Runner.Pool.run (silent_jobs 20) in
  let forked, _ = Runner.Pool.run ~workers:4 (silent_jobs 20) in
  let domains, stats =
    Runner.Pool.run ~backend:`Domain ~workers:4 (silent_jobs 20)
  in
  let vals rs = List.map (fun (_, b) -> (Runner.Job.decode b : int)) rs in
  Alcotest.(check (list int)) "domain matches serial" (vals serial) (vals domains);
  Alcotest.(check (list int)) "domain matches fork" (vals forked) (vals domains);
  Alcotest.(check (list string)) "silent jobs stay silent"
    (List.map fst serial)
    (List.map fst domains);
  Alcotest.(check int) "executed" 20 stats.Runner.Pool.executed;
  Alcotest.(check int) "no respawns" 0 stats.Runner.Pool.respawns

let test_domain_job_exception () =
  let bad =
    Runner.Job.create ~key:"t/domain/bad" (fun () -> failwith "boom")
  in
  let results, stats =
    Runner.Pool.run_results ~backend:`Domain ~workers:2
      [ silent_job 1; bad; silent_job 2 ]
  in
  (match results with
  | [ (_, Ok a); (_, Error reason); (_, Ok b) ] ->
      Alcotest.(check int) "first" 2 (Runner.Job.decode a : int);
      Alcotest.(check int) "third" 5 (Runner.Job.decode b : int);
      Alcotest.(check bool) "reason mentions boom" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "expected Ok/Error/Ok in job order");
  Alcotest.(check int) "two executed" 2 stats.Runner.Pool.executed

let test_domain_fills_cache () =
  let dir = fresh_dir "ccstarve_domain_cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cache = Runner.Cache.create ~dir () in
      let _, s1 =
        Runner.Pool.run ~backend:`Domain ~workers:4 ~cache (silent_jobs 8)
      in
      Alcotest.(check int) "first run executes" 8 s1.Runner.Pool.executed;
      (* A fork re-run must be served entirely from the domain-filled
         cache — the two backends share one result representation. *)
      let results, s2 = Runner.Pool.run ~workers:4 ~cache (silent_jobs 8) in
      Alcotest.(check int) "rerun all hits" 8 s2.Runner.Pool.cache_hits;
      Alcotest.(check int) "rerun executes nothing" 0 s2.Runner.Pool.executed;
      Alcotest.(check (list int)) "payloads intact"
        (List.map (fun i -> (i * i) + 1) (List.init 8 Fun.id))
        (List.map (fun (_, b) -> (Runner.Job.decode b : int)) results))

(* ------------------------------------------------------------------ *)
(* Failure handling                                                    *)
(* ------------------------------------------------------------------ *)

let test_job_exception_serial () =
  let bad =
    Runner.Job.create ~key:"t/raise" (fun () -> if true then failwith "boom" else 0)
  in
  match Runner.Pool.run [ job 1; bad ] with
  | exception Runner.Pool.Job_failed { key; reason } ->
      Alcotest.(check string) "failing key" "t/raise" key;
      Alcotest.(check bool) "reason mentions boom" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "expected Job_failed"

let test_job_exception_parallel () =
  let bad =
    Runner.Job.create ~key:"t/raise-par" (fun () -> if true then failwith "boom" else 0)
  in
  match Runner.Pool.run ~workers:2 [ job 1; bad; job 2 ] with
  | exception Runner.Pool.Job_failed { key; _ } ->
      Alcotest.(check string) "failing key" "t/raise-par" key
  | _ -> Alcotest.fail "expected Job_failed"

let test_crashed_worker_respawns () =
  (* The job SIGKILLs its own worker on the first attempt (marker file
     absent) and succeeds on the retry.  Requires >= 2 workers so the
     suicide happens in a forked child, never in the test process. *)
  let marker = Filename.temp_file "runner_crash" ".marker" in
  Sys.remove marker;
  let suicidal =
    Runner.Job.create ~key:"t/suicide" (fun () ->
        if not (Sys.file_exists marker) then begin
          Out_channel.with_open_bin marker (fun oc ->
              Out_channel.output_string oc "x");
          Unix.kill (Unix.getpid ()) Sys.sigkill
        end;
        42)
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      let results, stats =
        Runner.Pool.run ~workers:2 [ job 1; suicidal; job 2 ]
      in
      Alcotest.(check (list int)) "all results present" [ 1; 42; 4 ]
        (List.map snd (decoded results));
      Alcotest.(check bool) "respawned at least once" true
        (stats.Runner.Pool.respawns >= 1))

let test_persistent_crash_fails () =
  let suicidal =
    Runner.Job.create ~key:"t/always-dies" (fun () ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        0)
  in
  match Runner.Pool.run ~workers:2 ~max_attempts:2 [ suicidal ] with
  | exception Runner.Pool.Job_failed { key; _ } ->
      Alcotest.(check string) "failing key" "t/always-dies" key
  | _ -> Alcotest.fail "expected Job_failed"

let test_timeout_kills_stuck_worker () =
  let stuck =
    Runner.Job.create ~key:"t/stuck" (fun () ->
        Unix.sleep 30;
        0)
  in
  match Runner.Pool.run ~workers:2 ~timeout:0.4 ~max_attempts:1 [ stuck ] with
  | exception Runner.Pool.Job_failed { key; reason } ->
      Alcotest.(check string) "failing key" "t/stuck" key;
      Alcotest.(check bool) "reason mentions timeout" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "expected Job_failed"

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_roundtrip () =
  let dir = fresh_dir "runner_cache_rt" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c = Runner.Cache.create ~dir ~version:"v1" () in
      Alcotest.(check (option (pair string bytes))) "miss on empty" None
        (Runner.Cache.find c ~key:"k");
      Runner.Cache.store c ~key:"k" ~stdout:"hello\n"
        ~payload:(Marshal.to_bytes 17 []);
      (match Runner.Cache.find c ~key:"k" with
      | Some (out, payload) ->
          Alcotest.(check string) "stdout back" "hello\n" out;
          Alcotest.(check int) "payload back" 17 (Marshal.from_bytes payload 0)
      | None -> Alcotest.fail "expected hit");
      Alcotest.(check int) "one hit" 1 (Runner.Cache.hits c);
      Alcotest.(check int) "one miss" 1 (Runner.Cache.misses c))

let test_cache_version_invalidates () =
  let dir = fresh_dir "runner_cache_ver" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let c1 = Runner.Cache.create ~dir ~version:"v1" () in
      Runner.Cache.store c1 ~key:"k" ~stdout:"" ~payload:(Bytes.of_string "p");
      let c2 = Runner.Cache.create ~dir ~version:"v2" () in
      Alcotest.(check bool) "other version misses" true
        (Runner.Cache.find c2 ~key:"k" = None);
      let c1' = Runner.Cache.create ~dir ~version:"v1" () in
      Alcotest.(check bool) "same version hits" true
        (Runner.Cache.find c1' ~key:"k" <> None))

let run_with_cache ~dir ~workers n =
  let cache = Runner.Cache.create ~dir ~version:"test" () in
  Runner.Pool.run ~workers ~cache (jobs n)

let test_cached_rerun_executes_nothing () =
  let dir = fresh_dir "runner_cache_pool" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cold, s1 = run_with_cache ~dir ~workers:1 9 in
      Alcotest.(check int) "cold run executes all" 9 s1.Runner.Pool.executed;
      let warm, s2 = run_with_cache ~dir ~workers:1 9 in
      Alcotest.(check int) "warm run executes nothing" 0 s2.Runner.Pool.executed;
      Alcotest.(check int) "warm run all hits" 9 s2.Runner.Pool.cache_hits;
      Alcotest.(check (list (pair string int))) "identical replay"
        (decoded cold) (decoded warm);
      (* A parallel run over a warm cache is identical too. *)
      let warm_par, s3 = run_with_cache ~dir ~workers:4 9 in
      Alcotest.(check int) "parallel warm all hits" 9 s3.Runner.Pool.cache_hits;
      Alcotest.(check (list (pair string int))) "identical parallel replay"
        (decoded cold) (decoded warm_par))

let test_parallel_run_fills_cache () =
  let dir = fresh_dir "runner_cache_par" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let _, s1 = run_with_cache ~dir ~workers:4 12 in
      Alcotest.(check int) "parallel cold executes all" 12
        s1.Runner.Pool.executed;
      let _, s2 = run_with_cache ~dir ~workers:1 12 in
      Alcotest.(check int) "serial warm run hits parallel entries" 12
        s2.Runner.Pool.cache_hits)

let test_truncated_cache_entry_recomputed () =
  let dir = fresh_dir "runner_cache_trunc" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let _, s1 = run_with_cache ~dir ~workers:1 3 in
      Alcotest.(check int) "cold run executes all" 3 s1.Runner.Pool.executed;
      (* Truncate every entry as a crash mid-write would (if the writes
         were not atomic) and garble one outright. *)
      let entries =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".job")
        |> List.map (Filename.concat dir)
      in
      Alcotest.(check int) "three entries on disk" 3 (List.length entries);
      List.iteri
        (fun i p ->
          let raw = In_channel.with_open_bin p In_channel.input_all in
          Out_channel.with_open_bin p (fun oc ->
              if i = 0 then Out_channel.output_string oc "garbage"
              else
                Out_channel.output_string oc
                  (String.sub raw 0 (String.length raw / 2))))
        entries;
      (* Corrupt entries must degrade to misses and recompute, not crash
         or decode garbage. *)
      let again, s2 = run_with_cache ~dir ~workers:1 3 in
      Alcotest.(check int) "all recomputed" 3 s2.Runner.Pool.executed;
      Alcotest.(check int) "no hits from corrupt entries" 0
        s2.Runner.Pool.cache_hits;
      Alcotest.(check (list int)) "results still correct" [ 0; 1; 4 ]
        (List.map snd (decoded again));
      (* The recomputation rewrote intact entries. *)
      let _, s3 = run_with_cache ~dir ~workers:1 3 in
      Alcotest.(check int) "entries healed" 3 s3.Runner.Pool.cache_hits)

(* ------------------------------------------------------------------ *)
(* Supervision                                                         *)
(* ------------------------------------------------------------------ *)

(* No-sleep policy so retry tests don't wait out real backoff. *)
let test_policy ?deadline ?heap_ceiling_words ?(max_attempts = 3) () =
  {
    Runner.Supervise.default_policy with
    max_attempts;
    deadline;
    heap_ceiling_words;
    sleep = (fun _ -> ());
  }

let test_supervise_matches_plain () =
  let plain, _ = Runner.Pool.run (jobs 6) in
  let outcomes, stats =
    Runner.Supervise.run ~policy:(test_policy ()) (jobs 6)
  in
  let supervised =
    List.map
      (function
        | Runner.Supervise.Done { out; payload } -> (out, payload)
        | Runner.Supervise.Quarantined { reason; _ } -> Alcotest.fail reason)
      outcomes
  in
  Alcotest.(check (list (pair string int)))
    "supervised results byte-equal to plain pool run" (decoded plain)
    (decoded supervised);
  Alcotest.(check int) "no retries" 0 stats.Runner.Pool.retried;
  Alcotest.(check int) "no quarantines" 0 stats.Runner.Pool.quarantined

let test_supervise_retries_flaky () =
  (* Fails (raises) until the third attempt, then succeeds: one job's
     flakiness must not fail the matrix, and the attempts must be
     counted. *)
  let marker = Filename.temp_file "runner_flaky" ".marker" in
  let flaky =
    Runner.Job.create ~key:"t/flaky" (fun () ->
        let n =
          int_of_string (In_channel.with_open_bin marker In_channel.input_all)
        in
        Out_channel.with_open_bin marker (fun oc ->
            Out_channel.output_string oc (string_of_int (n + 1)));
        if n < 2 then failwith (Printf.sprintf "flaky attempt %d" n);
        777)
  in
  Fun.protect
    ~finally:(fun () -> try Sys.remove marker with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin marker (fun oc ->
          Out_channel.output_string oc "0");
      let outcomes, stats =
        Runner.Supervise.run ~policy:(test_policy ()) [ job 1; flaky ]
      in
      (match outcomes with
      | [ Runner.Supervise.Done _; Runner.Supervise.Done { payload; _ } ] ->
          Alcotest.(check int) "flaky result" 777
            (Runner.Job.decode payload)
      | _ -> Alcotest.fail "expected both jobs Done");
      Alcotest.(check int) "two retries counted" 2 stats.Runner.Pool.retried)

let test_supervise_quarantine_and_failure_record () =
  let dir = fresh_dir "runner_quarantine" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let cache = Runner.Cache.create ~dir ~version:"test" () in
      let bad =
        Runner.Job.create ~key:"t/hopeless" (fun () ->
            if true then failwith "always broken";
            0)
      in
      let outcomes, stats =
        Runner.Supervise.run
          ~policy:(test_policy ~max_attempts:2 ())
          ~cache [ job 1; bad ]
      in
      (match outcomes with
      | [ Runner.Supervise.Done _;
          Runner.Supervise.Quarantined { reason; history } ] ->
          Alcotest.(check int) "full attempt history" 2 (List.length history);
          Alcotest.(check bool) "reason mentions the failure" true
            (String.length reason > 0)
      | _ -> Alcotest.fail "expected Done + Quarantined");
      Alcotest.(check int) "one quarantine" 1 stats.Runner.Pool.quarantined;
      (* The structured failure record landed beside the cache. *)
      let record = Runner.Supervise.failure_record_path cache "t/hopeless" in
      Alcotest.(check bool) "failure record exists" true
        (Sys.file_exists record);
      let body = In_channel.with_open_bin record In_channel.input_all in
      List.iter
        (fun needle ->
          let n = String.length needle and m = String.length body in
          let rec at i =
            i + n <= m && (String.sub body i n = needle || at (i + 1))
          in
          Alcotest.(check bool) ("record contains " ^ needle) true (at 0))
        [ "t/hopeless"; "always broken"; "\"attempts\"" ])

let test_supervise_journal_resume () =
  let dir = fresh_dir "runner_journal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let journal = Filename.concat dir "journal" in
      let cache () = Runner.Cache.create ~dir ~version:"test" () in
      let outcomes1, s1 =
        Runner.Supervise.run ~policy:(test_policy ()) ~cache:(cache ())
          ~journal (jobs 4)
      in
      Alcotest.(check int) "first run executes all" 4 s1.Runner.Pool.executed;
      (* Same journal, same cache: everything resumes, nothing runs. *)
      let outcomes2, s2 =
        Runner.Supervise.run ~policy:(test_policy ()) ~cache:(cache ())
          ~journal (jobs 4)
      in
      Alcotest.(check int) "all resumed" 4 s2.Runner.Pool.resumed;
      Alcotest.(check int) "nothing executed" 0 s2.Runner.Pool.executed;
      let payloads o =
        List.map
          (function
            | Runner.Supervise.Done { out; payload } -> (out, payload)
            | Runner.Supervise.Quarantined { reason; _ } -> Alcotest.fail reason)
          o
      in
      Alcotest.(check (list (pair string int))) "resumed results identical"
        (decoded (payloads outcomes1))
        (decoded (payloads outcomes2));
      (* A journaled-done job whose cache entry vanished recomputes. *)
      let victim_key = Runner.Job.key (job 2) in
      let victim_path =
        (* Cache file names are private; find it by elimination: probe
           each entry and delete the one holding the victim. *)
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".job")
        |> List.map (Filename.concat dir)
        |> List.find (fun p ->
               let c = cache () in
               let raw = In_channel.with_open_bin p In_channel.input_all in
               Sys.remove p;
               let gone = Runner.Cache.find c ~key:victim_key = None in
               Out_channel.with_open_bin p (fun oc ->
                   Out_channel.output_string oc raw);
               gone)
      in
      Sys.remove victim_path;
      let _, s3 =
        Runner.Supervise.run ~policy:(test_policy ()) ~cache:(cache ())
          ~journal (jobs 4)
      in
      Alcotest.(check int) "three resumed" 3 s3.Runner.Pool.resumed;
      Alcotest.(check int) "one recomputed" 1 s3.Runner.Pool.executed)

let test_supervise_heap_ceiling_quarantines () =
  (* The allocation bomb must run in a forked worker: the Gc alarm
     raises at the end of a major collection in that process only. *)
  let bomb =
    Runner.Job.create ~key:"t/heap-bomb" (fun () ->
        let acc = ref [] in
        for _ = 1 to 200_000 do
          acc := Bytes.create 1024 :: !acc
        done;
        List.length !acc)
  in
  let outcomes, stats =
    Runner.Supervise.run ~workers:2
      ~policy:(test_policy ~heap_ceiling_words:(4 * 1024 * 1024) ())
      [ job 1; bomb ]
  in
  (match outcomes with
  | [ Runner.Supervise.Done _;
      Runner.Supervise.Quarantined { reason; history } ] ->
      let mentions_ceiling =
        let needle = "heap ceiling" in
        let n = String.length needle and m = String.length reason in
        let rec at i =
          i + n <= m && (String.sub reason i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool) "reason names the heap ceiling" true
        mentions_ceiling;
      Alcotest.(check int) "no retry of a deterministic failure" 1
        (List.length history)
  | _ -> Alcotest.fail "expected Done + Quarantined");
  Alcotest.(check int) "quarantined" 1 stats.Runner.Pool.quarantined;
  Alcotest.(check int) "not retried" 0 stats.Runner.Pool.retried

let test_supervise_backoff_deterministic () =
  let p = Runner.Supervise.default_policy in
  let b1 = Runner.Supervise.backoff p ~key:"k" ~attempt:1 in
  let b1' = Runner.Supervise.backoff p ~key:"k" ~attempt:1 in
  let b4 = Runner.Supervise.backoff p ~key:"k" ~attempt:4 in
  Alcotest.(check (float 0.)) "replayable" b1 b1';
  Alcotest.(check bool) "grows with attempts" true (b4 > b1);
  Alcotest.(check bool) "capped" true
    (Runner.Supervise.backoff p ~key:"k" ~attempt:30 <= p.backoff_max)

(* ------------------------------------------------------------------ *)
(* repro exit codes                                                    *)
(* ------------------------------------------------------------------ *)

(* The driver's failure contract, checked end to end on the real binary:
   a quarantined (retry-exhausted) job must not exit 0 — CI green with a
   silently skipped experiment is the worst failure mode a result-
   reproduction repo can have.  [--allow-failures] is the explicit
   opt-out: the experiment is skipped with a notice and the rest of the
   matrix still reports. *)

let repro_exe = "../bin/repro.exe"

let run_repro args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" repro_exe args)

let test_repro_quarantine_exits_nonzero () =
  if not (Sys.file_exists repro_exe) then
    Alcotest.skip ()
  else
    Alcotest.(check int) "quarantined job exits 3" 3
      (run_repro "selftest-fail --no-cache --max-attempts 2")

let test_repro_allow_failures_downgrades () =
  if not (Sys.file_exists repro_exe) then
    Alcotest.skip ()
  else
    Alcotest.(check int) "--allow-failures exits 0" 0
      (run_repro "selftest-fail --no-cache --max-attempts 2 --allow-failures")

(* ------------------------------------------------------------------ *)
(* Registry plans                                                      *)
(* ------------------------------------------------------------------ *)

let plan_keys ~quick ~backend =
  List.concat_map
    (fun e ->
      List.map Runner.Job.key
        (e.Experiments.Registry.plan ~quick ~backend).Experiments.Registry.jobs)
    Experiments.Registry.all

let test_registry_plans_cover_all () =
  List.iter
    (fun e ->
      let p =
        e.Experiments.Registry.plan ~quick:true
          ~backend:Fluid.Backend.Packet
      in
      Alcotest.(check bool)
        (e.Experiments.Registry.key ^ " has jobs")
        true
        (List.length p.Experiments.Registry.jobs >= 1))
    Experiments.Registry.all

let test_registry_job_keys_unique () =
  let keys = plan_keys ~quick:true ~backend:Fluid.Backend.Packet in
  let distinct = List.sort_uniq String.compare keys in
  Alcotest.(check int) "keys globally unique" (List.length keys)
    (List.length distinct);
  (* Quick and full plans must not collide either: a quick result must
     never satisfy a full-mode lookup. *)
  let full_keys = plan_keys ~quick:false ~backend:Fluid.Backend.Packet in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " not shared with full mode") false
        (List.mem k full_keys))
    keys

(* The backend cache-key discipline: a backend-aware experiment's fluid
   jobs must never share a key with its packet jobs (a cached packet
   result satisfying a --backend fluid request would silently void the
   cross-validation), while packet-only experiments keep backend-free
   keys so their results cache across backend selections. *)
let test_registry_backend_keys_disjoint () =
  let packet = plan_keys ~quick:true ~backend:Fluid.Backend.Packet in
  List.iter
    (fun backend ->
      let keys = plan_keys ~quick:true ~backend in
      let tag = "/backend=" ^ Fluid.Backend.to_string backend in
      let aware, agnostic =
        List.partition
          (fun k ->
            let lk = String.length k and lt = String.length tag in
            lk >= lt && String.sub k (lk - lt) lt = tag)
          keys
      in
      Alcotest.(check bool)
        (Fluid.Backend.to_string backend ^ " has backend-aware jobs")
        true (aware <> []);
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " disjoint from packet keys") false
            (List.mem k packet))
        aware;
      (* Everything else is the same computation under any backend and
         must reuse the packet key verbatim. *)
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " cached across backends") true
            (List.mem k packet))
        agnostic)
    [ Fluid.Backend.Fluid; Fluid.Backend.Hybrid ]

let () =
  Alcotest.run "runner"
    [
      ( "serial",
        [
          Alcotest.test_case "order and stats" `Quick test_serial_order_and_stats;
          Alcotest.test_case "captures stdout" `Quick test_serial_captures_stdout;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches serial" `Quick test_parallel_matches_serial;
          Alcotest.test_case "more workers than jobs" `Quick
            test_more_workers_than_jobs;
          Alcotest.test_case "empty job list" `Quick test_empty_job_list;
        ] );
      ( "failures",
        [
          Alcotest.test_case "job exception serial" `Quick test_job_exception_serial;
          Alcotest.test_case "job exception parallel" `Quick
            test_job_exception_parallel;
          Alcotest.test_case "crashed worker respawns" `Quick
            test_crashed_worker_respawns;
          Alcotest.test_case "persistent crash fails" `Quick
            test_persistent_crash_fails;
          Alcotest.test_case "timeout kills stuck worker" `Quick
            test_timeout_kills_stuck_worker;
        ] );
      ( "cache",
        [
          Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
          Alcotest.test_case "version invalidates" `Quick
            test_cache_version_invalidates;
          Alcotest.test_case "cached rerun executes nothing" `Quick
            test_cached_rerun_executes_nothing;
          Alcotest.test_case "parallel run fills cache" `Quick
            test_parallel_run_fills_cache;
          Alcotest.test_case "truncated entry recomputed" `Quick
            test_truncated_cache_entry_recomputed;
        ] );
      ( "supervise",
        [
          Alcotest.test_case "matches plain pool run" `Quick
            test_supervise_matches_plain;
          Alcotest.test_case "retries flaky job" `Quick
            test_supervise_retries_flaky;
          Alcotest.test_case "quarantine writes failure record" `Quick
            test_supervise_quarantine_and_failure_record;
          Alcotest.test_case "journal resume" `Quick
            test_supervise_journal_resume;
          Alcotest.test_case "heap ceiling quarantines" `Quick
            test_supervise_heap_ceiling_quarantines;
          Alcotest.test_case "backoff deterministic" `Quick
            test_supervise_backoff_deterministic;
        ] );
      ( "registry",
        [
          Alcotest.test_case "plans cover all experiments" `Quick
            test_registry_plans_cover_all;
          Alcotest.test_case "job keys unique" `Quick test_registry_job_keys_unique;
          Alcotest.test_case "backend keys disjoint" `Quick
            test_registry_backend_keys_disjoint;
        ] );
      ( "repro-exit-codes",
        [
          Alcotest.test_case "quarantine exits nonzero" `Quick
            test_repro_quarantine_exits_nonzero;
          Alcotest.test_case "allow-failures downgrades" `Quick
            test_repro_allow_failures_downgrades;
        ] );
      (* Must stay last: on OCaml 5, Unix.fork is disallowed for the
         rest of the process once any domain has been spawned, so every
         fork-pool suite has to run before the first Domain.spawn.  The
         fork runs *inside* these tests are safe because each test
         forks before it spawns domains (or executes nothing from a
         warm cache). *)
      ( "domain",
        [
          Alcotest.test_case "matches fork and serial" `Quick
            test_domain_matches_fork;
          Alcotest.test_case "job exception isolated to its slot" `Quick
            test_domain_job_exception;
          Alcotest.test_case "fills the shared cache" `Quick
            test_domain_fills_cache;
        ] );
    ]
