(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper's evaluation
   (the per-experiment index of DESIGN.md) and prints paper-vs-measured
   rows plus the numeric series behind the figures.

   Part 2 runs bechamel microbenchmarks over the simulator's hot paths so
   performance regressions in the substrate are visible.

   Part 3 is the macro throughput benchmark: simulated-seconds/sec,
   packets/sec and GC pressure on a canonical 1 s Reno run, written to
   BENCH_simulator.json next to a recorded pre-optimization baseline.

   Pass --quick for shortened simulation runs, --macro to run only the
   macro benchmark (the CI bench-smoke entry point). *)

let quick = Array.exists (fun a -> a = "--quick") Sys.argv
let macro_only = Array.exists (fun a -> a = "--macro") Sys.argv

(* ------------------------------------------------------------------ *)
(* Part 1: paper tables and figures                                    *)
(* ------------------------------------------------------------------ *)

let figures () =
  (* Figure 1: RTT trajectories. *)
  List.iter
    (fun (name, s) ->
      let data =
        Array.to_list
          (Array.map2
             (fun t v -> [ t; Sim.Units.to_ms v ])
             (Sim.Series.times s) (Sim.Series.values s))
      in
      let every = max 1 (List.length data / 60) in
      let data = List.filteri (fun i _ -> i mod every = 0) data in
      Experiments.Report.print_series
        ~title:(Printf.sprintf "Figure 1 (%s): time (s), RTT (ms)" name)
        ~cols:[ "t"; "rtt_ms" ] data)
    (Experiments.Exp_fig1.series ~quick ());
  (* Figures 2-3: analytic rate-delay bands. *)
  let rates = List.map Sim.Units.mbps [ 0.1; 0.3; 1.; 3.; 10.; 30.; 100. ] in
  List.iter
    (fun (name, pts) ->
      Experiments.Report.print_series
        ~title:(Printf.sprintf "Figure 3 (%s): rate (Mbit/s), delay band (ms)" name)
        ~cols:[ "mbps"; "d_min_ms"; "d_max_ms" ]
        (List.map
           (fun (r, (b : Core.Rate_delay.band)) ->
             [ Sim.Units.to_mbps r; Sim.Units.to_ms b.d_min; Sim.Units.to_ms b.d_max ])
           pts))
    (Experiments.Exp_fig3.analytic_series ~rm:0.1 ~rates);
  (* Figure 7: cwnd traces. *)
  List.iter
    (fun (r : Experiments.Exp_fig7.result) ->
      let dump tag s =
        let data =
          Array.to_list
            (Array.map2
               (fun t v -> [ t; v /. 1500. ])
               (Sim.Series.times s) (Sim.Series.values s))
        in
        let every = max 1 (List.length data / 60) in
        let data = List.filteri (fun i _ -> i mod every = 0) data in
        Experiments.Report.print_series
          ~title:(Printf.sprintf "Figure 7 (%s, %s): time (s), cwnd (pkts)" r.cca_name tag)
          ~cols:[ "t"; "cwnd" ] data
      in
      dump "delack" r.cwnd_delack;
      dump "normal" r.cwnd_normal)
    (Experiments.Exp_fig7.series ~quick ());
  (* Figures 4-6 from the Theorem 1 construction. *)
  (match Experiments.Exp_theorem1.outcome ~quick () with
  | Error e -> Printf.printf "theorem1 construction failed: %s\n" e
  | Ok o ->
      Experiments.Report.print_series ~title:"Figure 4: probe rate (Mbit/s), d_max (ms)"
        ~cols:[ "mbps"; "d_max_ms" ]
        (List.map
           (fun (m : Core.Convergence.measurement) ->
             [ Sim.Units.to_mbps m.rate; Sim.Units.to_ms m.d_max ])
           o.Core.Theorem1.pair.Core.Pigeonhole.probes);
      let trajectories =
        [
          ("C1 rtt", o.Core.Theorem1.pair.Core.Pigeonhole.m1.Core.Convergence.rtt);
          ("C2 rtt", o.Core.Theorem1.pair.Core.Pigeonhole.m2.Core.Convergence.rtt);
          ("d_star", o.Core.Theorem1.d_star);
        ]
      in
      List.iter
        (fun (name, s) ->
          let data =
            Array.to_list
              (Array.map2
                 (fun t v -> [ t; Sim.Units.to_ms v ])
                 (Sim.Series.times s) (Sim.Series.values s))
          in
          let every = max 1 (List.length data / 40) in
          let data = List.filteri (fun i _ -> i mod every = 0) data in
          Experiments.Report.print_series
            ~title:(Printf.sprintf "Figures 5-6 (%s): time (s), delay (ms)" name)
            ~cols:[ "t"; "ms" ] data)
        trajectories);
  (* E10: the sec. 6.3 figure-of-merit table. *)
  Experiments.Report.print_series
    ~title:"E10: figure of merit (D ms, s, vegas mu+/mu-, exponential mu+/mu-)"
    ~cols:[ "D_ms"; "s"; "vegas"; "exponential" ]
    (List.map
       (fun (r : Core.Ambiguity.merit_row) ->
         [ Sim.Units.to_ms r.jitter; r.s; r.vegas; r.exponential ])
       (Experiments.Exp_alg1.merit_rows ()))

(* ------------------------------------------------------------------ *)
(* Part 2: bechamel microbenchmarks                                    *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let bench_heap () =
  let h = Sim.Heap.create ~dummy:0 ~cmp:Int.compare () in
  for i = 0 to 999 do
    Sim.Heap.push h ((i * 7919) mod 1000)
  done;
  while not (Sim.Heap.is_empty h) do
    ignore (Sim.Heap.pop h)
  done

let bench_event_queue () =
  let eq = Sim.Event_queue.create () in
  for i = 1 to 1000 do
    Sim.Event_queue.schedule eq ~at:(float_of_int i) (fun () -> ())
  done;
  Sim.Event_queue.run eq

let bench_series () =
  let s = Sim.Series.create () in
  for i = 0 to 999 do
    Sim.Series.add s ~time:(float_of_int i) (float_of_int (i mod 17))
  done;
  ignore (Sim.Series.integral s ~t0:0. ~t1:999.)

let synthetic_ack now : Cca.ack_info =
  {
    Cca.now;
    rtt = 0.05 +. (0.001 *. Float.rem now 0.01);
    acked_bytes = 1500;
    sent_time = now -. 0.05;
    delivered = int_of_float (now *. 1e6);
    delivered_now = int_of_float (now *. 1e6) + 1500;
    inflight = 30_000;
    app_limited = false;
    ecn_ce = false;
  }

let bench_cca make =
  let cca = make () in
  let now = ref 0. in
  fun () ->
    for _ = 1 to 100 do
      now := !now +. 0.001;
      cca.Cca.on_ack (synthetic_ack !now)
    done

let bench_drr_link () =
  let eq = Sim.Event_queue.create () in
  let link =
    Sim.Link.create ~eq ~rate:(Sim.Link.Constant 1.5e6)
      ~discipline:(Sim.Link.Drr { quantum = 1500 }) ~record_queue:false ()
  in
  Sim.Link.set_on_dequeue link (fun _ -> ());
  for i = 0 to 499 do
    ignore
      (Sim.Link.enqueue link
         {
           Sim.Packet.flow = i mod 4;
           seq = i;
           size = 1500;
           sent_at = 0.;
           delivered_at_send = 0;
           app_limited = false;
           ce = false;
         })
  done;
  Sim.Event_queue.run eq

let bench_opportunity_lookup () =
  let trace =
    Sim.Link.Opportunities
      { times = Array.init 1000 (fun i -> float_of_int i /. 1000.); period = 1.;
        bytes = 1500 }
  in
  let t = ref 0. in
  for _ = 1 to 1000 do
    t := Sim.Link.transmit_end trace ~start:!t ~bytes:1500
  done

let trivial_jobs n =
  List.init n (fun i ->
      Runner.Job.create ~key:(Printf.sprintf "bench/trivial/%d" i) (fun () -> i))

let bench_pool_serial () = ignore (Runner.Pool.run (trivial_jobs 32))

let bench_pool_forked () =
  (* Dominated by fork + pipe roundtrips: the pool's fixed overhead,
     i.e. how small a job is still worth dispatching. *)
  ignore (Runner.Pool.run ~workers:4 (trivial_jobs 32))

let bench_small_sim () =
  let rate = Sim.Units.mbps 12. in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate)
      ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.04) ~rm:0.04 ~duration:1.
      [ Sim.Network.flow (Reno.make ()) ]
  in
  ignore (Sim.Network.run_config cfg)

let bench_faulted_sim () =
  (* Same 1 s Reno run, but through a blackout + bursty-loss fault plan
     with the invariant monitor auditing at 10 ms: the price of the
     robustness layer on the hot path. *)
  let rate = Sim.Units.mbps 12. in
  let faults =
    Sim.Fault.plan
      [
        Sim.Fault.Link_blackout { t0 = 0.4; t1 = 0.55 };
        Sim.Fault.Bursty_loss
          { flow = 0; t0 = 0.; t1 = 1.; p_enter = 0.02; p_exit = 0.3;
            loss_good = 0.; loss_bad = 0.3 };
      ]
  in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate)
      ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.04) ~rm:0.04 ~duration:1.
      ~faults ~monitor_period:0.01
      [ Sim.Network.flow (Reno.make ()) ]
  in
  ignore (Sim.Network.run_config cfg)

let microbenches () =
  let tests =
    [
      Test.make ~name:"heap push/pop 1k" (Staged.stage bench_heap);
      Test.make ~name:"event queue 1k events" (Staged.stage bench_event_queue);
      Test.make ~name:"series add+integral 1k" (Staged.stage bench_series);
      Test.make ~name:"vegas 100 acks" (Staged.stage (bench_cca (fun () -> Vegas.make ())));
      Test.make ~name:"copa 100 acks" (Staged.stage (bench_cca (fun () -> Copa.make ())));
      Test.make ~name:"bbr 100 acks" (Staged.stage (bench_cca (fun () -> Bbr.make ())));
      Test.make ~name:"cubic 100 acks" (Staged.stage (bench_cca (fun () -> Cubic.make ())));
      Test.make ~name:"reno 1s simulated" (Staged.stage bench_small_sim);
      Test.make ~name:"reno 1s faulted+monitored" (Staged.stage bench_faulted_sim);
      Test.make ~name:"drr link 500 pkts" (Staged.stage bench_drr_link);
      Test.make ~name:"opportunity lookup 1k" (Staged.stage bench_opportunity_lookup);
      Test.make ~name:"pool 32 jobs serial" (Staged.stage bench_pool_serial);
      Test.make ~name:"pool 32 jobs 4 workers" (Staged.stage bench_pool_forked);
    ]
  in
  let grouped = Test.make_grouped ~name:"substrate" tests in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n== Substrate microbenchmarks (monotonic clock) ==\n";
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, v) ->
         match Analyze.OLS.estimates v with
         | Some (ns :: _) ->
             let pretty =
               if ns > 1e9 then Printf.sprintf "%.3f s" (ns /. 1e9)
               else if ns > 1e6 then Printf.sprintf "%.3f ms" (ns /. 1e6)
               else if ns > 1e3 then Printf.sprintf "%.3f us" (ns /. 1e3)
               else Printf.sprintf "%.1f ns" ns
             in
             Printf.printf "%-36s %14s\n" name pretty
         | _ -> Printf.printf "%-36s %14s\n" name "n/a")

(* The acceptance measurement for the runner: the same job list, serial
   vs a 4-worker pool, on real simulations (the E18 quick matrix). *)
let pool_speedup () =
  let jobs, _ = Experiments.Exp_faults.plan ~quick:true in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let serial = time (fun () -> Runner.Pool.run jobs) in
  let forked = time (fun () -> Runner.Pool.run ~workers:4 jobs) in
  Printf.printf "\n== Runner pool speedup (%d E18-quick jobs, %d cores) ==\n"
    (List.length jobs)
    (Runner.Pool.default_workers ());
  Printf.printf "serial %.2f s, 4 workers %.2f s: %.1fx speedup\n" serial forked
    (serial /. forked)

(* ------------------------------------------------------------------ *)
(* Part 3: macro throughput benchmark                                  *)
(* ------------------------------------------------------------------ *)

(* Pre-optimization numbers for the same canonical run, measured at the
   commit before the allocation-light hot path landed (main@66340fc,
   same measurement loop, same host class).  Kept here so every
   BENCH_simulator.json records the comparison it claims. *)
let macro_baseline_packets_per_sec = 226_388.
let macro_baseline_minor_words_per_packet = 165.6
let macro_baseline_peak_pending = 44
let macro_baseline_commit = "main@66340fc"

let macro_config () =
  let rate = Sim.Units.mbps 12. in
  Sim.Network.config ~rate:(Sim.Link.Constant rate)
    ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.04) ~rm:0.04 ~duration:1.
    [ Sim.Network.flow (Reno.make ()) ]

(* Peak event-queue occupancy on a 2-flow run: with per-flow delay lines
   this stays O(flows + link), independent of the bandwidth-delay
   product, where per-packet scheduling scaled with packets in flight. *)
let macro_peak_pending () =
  let rate = Sim.Units.mbps 12. in
  let cfg =
    Sim.Network.config ~rate:(Sim.Link.Constant rate)
      ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.04) ~rm:0.04 ~duration:1.
      [ Sim.Network.flow (Reno.make ()); Sim.Network.flow (Reno.make ()) ]
  in
  let net = Sim.Network.build cfg in
  let eq = Sim.Network.event_queue net in
  let peak = ref 0 in
  while Sim.Event_queue.now eq < 1.0 && Sim.Event_queue.step eq do
    peak := max !peak (Sim.Event_queue.pending eq)
  done;
  !peak

let write_bench_json path fields =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\n";
      List.iteri
        (fun i (k, v) ->
          Printf.fprintf oc "  %S: %s%s\n" k v
            (if i = List.length fields - 1 then "" else ","))
        fields;
      output_string oc "}\n")

(* Checkpointing overhead: the same canonical Reno run, plain vs paused
   every [interval] simulated seconds for a full capture (state hash +
   closure-carrying serialization).  Series recording is off so the
   snapshot payload reflects live simulator state, not trace length, and
   best-of-3 timing keeps scheduler noise out of a ratio the CI gate
   compares against 5%.  The scenario is a fast link with a short RTT
   (192 Mbit/s, 10 ms, a checkpoint per simulated second): a capture's
   price scales with the in-flight state it must hash and serialize,
   the run's with the packets it simulates, so this is the regime where
   the ratio is a property of the checkpoint machinery rather than of
   an artificially idle simulation. *)
let snapshot_interval = 1.0

let snapshot_overhead () =
  let rate = Sim.Units.mbps 192. in
  let duration = if quick then 2.0 else 4.0 in
  let reps = if quick then 4 else 6 in
  let cfg () =
    Sim.Network.config ~rate:(Sim.Link.Constant rate)
      ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.01) ~rm:0.01 ~duration
      [ Sim.Network.flow ~record_series:false (Reno.make ()) ]
  in
  let pkts = ref 0 in
  let plain () =
    pkts := 0;
    for _ = 1 to reps do
      let net = Sim.Network.run_config (cfg ()) in
      pkts := !pkts + (Sim.Flow.delivered_bytes (Sim.Network.flows net).(0) / 1500)
    done
  in
  let checkpoints = ref 0 in
  let snapshotted () =
    checkpoints := 0;
    for _ = 1 to reps do
      let net = Sim.Network.build (cfg ()) in
      ignore
        (Sim.Snapshot.run_with_checkpoints ~interval:snapshot_interval
           ~on_checkpoint:(fun _ -> incr checkpoints)
           net)
    done
  in
  (* Warm both paths, then time them interleaved from the same GC state:
     the two loops differ by a few hundred microseconds per run, which
     back-to-back timing would bury under collector debt accumulated by
     whichever loop happens to run first. *)
  plain ();
  snapshotted ();
  let t_plain = ref infinity and t_snap = ref infinity in
  for _ = 1 to 5 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    plain ();
    t_plain := Float.min !t_plain (Unix.gettimeofday () -. t0);
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    snapshotted ();
    t_snap := Float.min !t_snap (Unix.gettimeofday () -. t0)
  done;
  let t_plain = !t_plain and t_snap = !t_snap in
  let pps_plain = float_of_int !pkts /. t_plain in
  let pps_snap = float_of_int !pkts /. t_snap in
  let overhead = Float.max 0. ((t_snap /. t_plain) -. 1.) in
  ( pps_plain,
    pps_snap,
    overhead,
    !checkpoints / reps )

(* Invariant-monitor (oracle) overhead: the same canonical Reno run with
   the audit closure off vs auditing every 10 ms of simulated time.  The
   audit walks the conservation identities (link, per-flow, end-to-end)
   plus the clock/queue/jitter checks, so this prices the whole oracle
   layer as experienced by a monitored experiment; validation off must
   stay within the CI gate (<= 10%).  Interleaved best-of-5 timing, same
   rationale as [snapshot_overhead]. *)
let monitor_period = 0.01

let oracle_overhead () =
  let rate = Sim.Units.mbps 192. in
  let duration = if quick then 2.0 else 4.0 in
  let reps = if quick then 4 else 6 in
  let cfg ~monitored () =
    Sim.Network.config ~rate:(Sim.Link.Constant rate)
      ~buffer:(Sim.Units.bdp_bytes ~rate ~rtt:0.01) ~rm:0.01 ~duration
      ?monitor_period:(if monitored then Some monitor_period else None)
      [ Sim.Network.flow ~record_series:false (Reno.make ()) ]
  in
  let pkts = ref 0 in
  let run ~monitored () =
    pkts := 0;
    for _ = 1 to reps do
      let net = Sim.Network.run_config (cfg ~monitored ()) in
      pkts := !pkts + (Sim.Flow.delivered_bytes (Sim.Network.flows net).(0) / 1500)
    done
  in
  let plain () = run ~monitored:false () in
  let monitored () = run ~monitored:true () in
  plain ();
  monitored ();
  let t_plain = ref infinity and t_mon = ref infinity in
  for _ = 1 to 5 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    plain ();
    t_plain := Float.min !t_plain (Unix.gettimeofday () -. t0);
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    monitored ();
    t_mon := Float.min !t_mon (Unix.gettimeofday () -. t0)
  done;
  let pps_plain = float_of_int !pkts /. !t_plain in
  let pps_mon = float_of_int !pkts /. !t_mon in
  let overhead = Float.max 0. ((!t_mon /. !t_plain) -. 1.) in
  (pps_plain, pps_mon, overhead)

(* Flow-churn throughput: completed flows per wall-clock second on the
   census workload shape (Poisson arrivals over 60% of the horizon,
   Pareto(1.5) sizes, one shared bottleneck), measured under both
   scheduler backends at a small and a large population.  At 8 flows the
   backends should be comparable — the wheel must not tax the common
   case; at the census population the heap pays O(log n) per re-arm
   against the wheel's O(1), which is the whole point of the wheel.
   The CI gate compares the measured wheel/heap ratio at the large
   population against the recorded baseline ratio: like the other
   gates, a ratio from one process is robust to CI machine noise where
   absolute flows/sec are not.  --quick runs a 20k population whose
   heap is two sift levels shallower, so its recorded ratio is lower
   than the full 100k one. *)
let churn_baseline_wheel_over_heap_big = if quick then 2.6 else 3.2
let churn_baseline_commit = "main@2a06121"

let churn_config ~backend ~n ~seed =
  let rate = Sim.Units.mbps 480. in
  let xm = 15_000. in
  let mean_size = 3. *. xm in
  let duration =
    Float.max 2. (float_of_int n *. mean_size /. (0.7 *. rate *. 0.6))
  in
  let master = Sim.Rng.create ~seed in
  let arrivals = Sim.Rng.stream master ~label:"bench/churn/arrivals" in
  let sizes = Sim.Rng.stream master ~label:"bench/churn/sizes" in
  let window = 0.6 *. duration in
  let mean_gap = window /. float_of_int n in
  let t = ref 0. in
  let specs =
    List.init n (fun _ ->
        t := !t +. Sim.Rng.exponential arrivals ~mean:mean_gap;
        let size =
          min 10_000_000
            (int_of_float (Sim.Rng.pareto sizes ~alpha:1.5 ~xm))
        in
        Sim.Network.flow ~start_time:(Float.min !t window)
          ~record_series:false ~size_bytes:size (Reno.make ()))
  in
  Sim.Network.config ~rate:(Sim.Link.Constant rate) ~rm:0.02 ~seed ~duration
    ~backend specs

let churn_rate ~backend ~n ~reps =
  let completed = ref 0 in
  let t0 = Unix.gettimeofday () in
  for r = 1 to reps do
    let net = Sim.Network.run_config (churn_config ~backend ~n ~seed:(42 + r)) in
    Array.iter
      (fun f -> if Sim.Flow.completed f then incr completed)
      (Sim.Network.flows net)
  done;
  float_of_int !completed /. (Unix.gettimeofday () -. t0)

let churn_bench () =
  let n_big = if quick then 20_000 else 100_000 in
  let reps_small = if quick then 500 else 1_500 in
  let rounds = if quick then 3 else 5 in
  let wheel = Sim.Event_queue.Wheel and heap = Sim.Event_queue.Heap in
  (* Warm code paths and heap sizing, then interleave wheel/heap within
     each best-of round — same rationale as [snapshot_overhead]: clock
     drift and background load hit both backends equally. *)
  ignore (churn_rate ~backend:wheel ~n:8 ~reps:2);
  ignore (churn_rate ~backend:heap ~n:8 ~reps:2);
  let best_pair fw fh =
    let w = ref 0. and h = ref 0. in
    for _ = 1 to rounds do
      Gc.full_major ();
      w := Float.max !w (fw ());
      Gc.full_major ();
      h := Float.max !h (fh ())
    done;
    (!w, !h)
  in
  let fps_wheel_small, fps_heap_small =
    best_pair
      (fun () -> churn_rate ~backend:wheel ~n:8 ~reps:reps_small)
      (fun () -> churn_rate ~backend:heap ~n:8 ~reps:reps_small)
  in
  let fps_wheel_big, fps_heap_big =
    best_pair
      (fun () -> churn_rate ~backend:wheel ~n:n_big ~reps:1)
      (fun () -> churn_rate ~backend:heap ~n:n_big ~reps:1)
  in
  Printf.printf "\n== Flow churn (completed flows/sec, wheel vs heap) ==\n";
  Printf.printf "%-34s %12s %12s %8s\n" "population" "heap" "wheel" "ratio";
  Printf.printf "%-34s %12.0f %12.0f %7.2fx\n" "8 flows" fps_heap_small
    fps_wheel_small (fps_wheel_small /. fps_heap_small);
  Printf.printf "%-34s %12.0f %12.0f %7.2fx\n"
    (Printf.sprintf "%d flows" n_big)
    fps_heap_big fps_wheel_big
    (fps_wheel_big /. fps_heap_big);
  (n_big, fps_wheel_small, fps_heap_small, fps_wheel_big, fps_heap_big)

(* Wheel/heap crossover sweep: the same churn workload at geometrically
   spaced populations, wheel vs heap interleaved per round.  The
   crossover is the smallest population where the wheel is at least 5%
   ahead — below it the lazy small-queue bypass keeps the wheel backend
   on the plain heap path, so the two must be statistically identical;
   above it the heap pays O(log n) per re-arm.  Per-point reps equalize
   total flows so the small populations are not all fork/setup noise. *)
let crossover_bench () =
  let pops = [ 8; 32; 128; 512; 2048; 8192 ] in
  let rounds = if quick then 2 else 3 in
  let reps n = max 1 (8192 / n) in
  let wheel = Sim.Event_queue.Wheel and heap = Sim.Event_queue.Heap in
  ignore (churn_rate ~backend:wheel ~n:8 ~reps:2);
  ignore (churn_rate ~backend:heap ~n:8 ~reps:2);
  Printf.printf "\n== Wheel/heap crossover sweep (completed flows/sec) ==\n";
  Printf.printf "%-34s %12s %12s %8s\n" "population" "heap" "wheel" "ratio";
  let ratios =
    List.map
      (fun n ->
        let w = ref 0. and h = ref 0. in
        for _ = 1 to rounds do
          Gc.full_major ();
          w := Float.max !w (churn_rate ~backend:wheel ~n ~reps:(reps n));
          Gc.full_major ();
          h := Float.max !h (churn_rate ~backend:heap ~n ~reps:(reps n))
        done;
        let ratio = !w /. !h in
        Printf.printf "%-34d %12.0f %12.0f %7.2fx\n" n !h !w ratio;
        (n, ratio))
      pops
  in
  (* The crossover is where the advantage becomes sustained: the first
     population after the last sub-threshold reading.  A single noisy
     high ratio at a small population (where each measurement is tens of
     milliseconds) must not register as the wheel "winning" below its
     bypass threshold. *)
  let crossover =
    match
      List.fold_left
        (fun acc (n, ratio) -> if ratio < 1.05 then Some n else acc)
        None ratios
    with
    | None -> List.hd pops
    | Some last_below -> (
        match List.find_opt (fun (n, _) -> n > last_below) ratios with
        | Some (n, _) -> n
        | None -> 0)
  in
  Printf.printf "crossover population (wheel >= 1.05x sustained): %d\n" crossover;
  crossover

(* The fix behind the old 0.99x wheel-vs-heap reading at 8 flows: with
   the lazy small-queue bypass the wheel backend must never allocate its
   wheel on a small population — pending events stay under the bypass
   threshold, so the backend runs the identical heap path plus one
   integer compare.  Verified structurally, not statistically. *)
let wheel_bypass_at_8 () =
  let cfg = churn_config ~backend:Sim.Event_queue.Wheel ~n:8 ~seed:7 in
  let net = Sim.Network.build cfg in
  ignore (Sim.Network.run net);
  not (Sim.Event_queue.wheel_allocated (Sim.Network.event_queue net))

(* Census-at-scale benchmark: one full standard census cell (Reno,
   columnar state, 20 ms ACK jitter — the same constants as
   Experiments.Exp_census) measured for wall-clock throughput and
   resident memory.  bytes/flow is the live-words delta, holding the
   complete census result (recycled flow table + goodput column), over
   the whole population: the number that says a million-flow census fits
   one machine because quiesced flows cost tens of bytes, not a struct
   of Series.  The goodput column alone is 8 bytes/flow, so the flow
   table is doing well if the total stays two digits. *)
let census_bench () =
  let n = if quick then 100_000 else 1_000_000 in
  let rate = Sim.Units.mbps 480. in
  let cfg =
    {
      Sim.Population.n;
      duration = Float.max 5. (float_of_int n *. 45_000. /. (0.7 *. rate *. 0.6));
      arrival_frac = 0.6;
      rate;
      buffer = None;
      rm = 0.02;
      mss = 1500;
      jitter_d = 0.02;
      seed = 42;
      key = Printf.sprintf "census/std/reno/jit=20ms/n=%d" n;
      alpha = 1.5;
      xm = 15_000.;
      size_cap = 10_000_000;
    }
  in
  let cols = Columns.create ~nfields:Reno.nfields () in
  let cca ~slot:_ ~prev =
    match prev with
    | Some i -> (
        match i.Cca.reset with
        | Some r ->
            r ();
            i
        | None -> assert false)
    | None -> Reno.make_in cols
  in
  Gc.compact ();
  let base_live = (Gc.stat ()).Gc.live_words in
  let t0 = Unix.gettimeofday () in
  let r = Sim.Population.run ~cca cfg in
  let wall = Unix.gettimeofday () -. t0 in
  Gc.full_major ();
  let live_delta = (Gc.stat ()).Gc.live_words - base_live in
  let bytes_per_flow = float_of_int (live_delta * 8) /. float_of_int n in
  let flows_per_sec = float_of_int n /. wall in
  let summary = Sim.Stats.ratio_summary_in_place r.Sim.Population.goodputs in
  Printf.printf "\n== Census at scale (std cell, reno, columnar, 20 ms jitter) ==\n";
  Printf.printf "%-34s %25d\n" "flows" n;
  Printf.printf "%-34s %25.1f\n" "wall seconds" wall;
  Printf.printf "%-34s %25.0f\n" "flows/sec" flows_per_sec;
  Printf.printf "%-34s %25d\n" "completed" r.Sim.Population.completed;
  Printf.printf "%-34s %25d\n" "starved" summary.Sim.Stats.starved;
  Printf.printf "%-34s %25d\n" "flow slots (peak concurrency)" r.Sim.Population.slots;
  Printf.printf "%-34s %25d\n" "peak pending events" r.Sim.Population.peak_pending;
  Printf.printf "%-34s %25d\n" "live words (result held)" live_delta;
  Printf.printf "%-34s %25.1f\n" "bytes/flow" bytes_per_flow;
  (n, wall, flows_per_sec, bytes_per_flow, live_delta, r.Sim.Population.completed,
   summary.Sim.Stats.starved, r.Sim.Population.slots)

(* Fluid backend speedup: the E14 threshold sweep (quick shape: 4 jitter
   multipliers x 20 simulated seconds of two Copa flows) on the packet
   simulator vs the discretised fluid backend.  Interleaved best-of
   timing, same rationale as [snapshot_overhead]; the fluid sweep is
   sub-millisecond, far below timer resolution, so each fluid sample
   times a batch of sweeps and divides.  The acceptance gate holds the
   ratio at >= 10x — the whole point of the fluid backend is that sweeps
   and censuses stop being the expensive part of an experiment run. *)
let fluid_sweep_sim_seconds = 4. *. 20.

let fluid_speedup_bench () =
  let sweep backend () =
    ignore (Experiments.Exp_threshold.sweep ~quick:true ~backend ())
  in
  sweep Fluid.Backend.Packet ();
  sweep Fluid.Backend.Fluid ();
  let fluid_reps = 50 in
  let t_packet = ref infinity and t_fluid = ref infinity in
  for _ = 1 to 3 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    sweep Fluid.Backend.Packet ();
    t_packet := Float.min !t_packet (Unix.gettimeofday () -. t0);
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to fluid_reps do
      sweep Fluid.Backend.Fluid ()
    done;
    t_fluid :=
      Float.min !t_fluid
        ((Unix.gettimeofday () -. t0) /. float_of_int fluid_reps)
  done;
  let speedup = !t_packet /. !t_fluid in
  let sim_per_sec = fluid_sweep_sim_seconds /. !t_fluid in
  Printf.printf "\n== Fluid backend speedup (E14 quick sweep) ==\n";
  Printf.printf "%-34s %12.4f s\n" "packet sweep (best of 3)" !t_packet;
  Printf.printf "%-34s %12.6f s\n"
    (Printf.sprintf "fluid sweep (best of 3 x %d)" fluid_reps)
    !t_fluid;
  Printf.printf "%-34s %11.1fx\n" "speedup" speedup;
  Printf.printf "%-34s %12.0f\n" "fluid simulated seconds/sec" sim_per_sec;
  (!t_packet, !t_fluid, speedup, sim_per_sec)

let macro_bench () =
  let cfg = macro_config () in
  (* Warm up: code paths, minor heap sizing, series growth. *)
  ignore (Sim.Network.run_config cfg);
  let reps = if quick then 5 else 30 in
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let pkts = ref 0 in
  let fallbacks = ref 0 in
  for _ = 1 to reps do
    let net = Sim.Network.run_config cfg in
    let f = (Sim.Network.flows net).(0) in
    pkts := !pkts + (Sim.Flow.delivered_bytes f / 1500);
    fallbacks := !fallbacks + Sim.Network.delay_line_fallbacks net
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let minor = Gc.minor_words () -. w0 in
  let top_heap = (Gc.quick_stat ()).Gc.top_heap_words in
  let packets_per_sec = float_of_int !pkts /. dt in
  let words_per_pkt = minor /. float_of_int !pkts in
  let sim_sec_per_sec = float_of_int reps /. dt in
  let peak_pending = macro_peak_pending () in
  let speedup = packets_per_sec /. macro_baseline_packets_per_sec in
  let alloc_factor = macro_baseline_minor_words_per_packet /. words_per_pkt in
  Printf.printf "\n== Macro simulator benchmark (1 s Reno run x %d) ==\n" reps;
  Printf.printf "%-34s %12s %12s %8s\n" "metric" "baseline" "now" "ratio";
  Printf.printf "%-34s %12.0f %12.0f %7.2fx\n" "packets/sec"
    macro_baseline_packets_per_sec packets_per_sec speedup;
  Printf.printf "%-34s %12.1f %12.1f %7.2fx\n" "GC minor words/packet"
    macro_baseline_minor_words_per_packet words_per_pkt alloc_factor;
  Printf.printf "%-34s %12d %12d\n" "peak pending events (2 flows)"
    macro_baseline_peak_pending peak_pending;
  Printf.printf "%-34s %25.1f\n" "simulated seconds/sec" sim_sec_per_sec;
  Printf.printf "%-34s %25d\n" "delay-line fallbacks" !fallbacks;
  let pps_plain, pps_snap, overhead, per_run = snapshot_overhead () in
  Printf.printf "%-34s %12.0f %12.0f %6.1f%%\n"
    (Printf.sprintf "checkpoints every %gs: pkts/sec" snapshot_interval)
    pps_plain pps_snap (overhead *. 100.);
  Printf.printf "%-34s %25d\n" "checkpoints per run" per_run;
  let pps_unmon, pps_mon, oracle_frac = oracle_overhead () in
  Printf.printf "%-34s %12.0f %12.0f %6.1f%%\n"
    (Printf.sprintf "invariant audit every %gs: pkts/sec" monitor_period)
    pps_unmon pps_mon (oracle_frac *. 100.);
  let churn_n, fps_wheel_small, fps_heap_small, fps_wheel_big, fps_heap_big =
    churn_bench ()
  in
  let wheel_over_heap_small = fps_wheel_small /. fps_heap_small in
  let wheel_over_heap_big = fps_wheel_big /. fps_heap_big in
  let crossover = crossover_bench () in
  let bypass_8 = wheel_bypass_at_8 () in
  Printf.printf "wheel lazy bypass at 8 flows: %b\n" bypass_8;
  let ( census_n, census_wall, fps_census, census_bytes_per_flow,
        census_live_words, census_completed, census_starved, census_slots ) =
    census_bench ()
  in
  let t_sweep_packet, t_sweep_fluid, fluid_speedup, fluid_sim_per_sec =
    fluid_speedup_bench ()
  in
  let json = "BENCH_simulator.json" in
  write_bench_json json
    [
      ("benchmark", "\"simulator_macro\"");
      ("mode", if quick then "\"quick\"" else "\"full\"");
      ("reps", string_of_int reps);
      ("simulated_seconds_per_sec", Printf.sprintf "%.1f" sim_sec_per_sec);
      ("packets_per_sec", Printf.sprintf "%.1f" packets_per_sec);
      ("minor_words_per_packet", Printf.sprintf "%.2f" words_per_pkt);
      ("top_heap_words", string_of_int top_heap);
      ("peak_pending_events_2flow", string_of_int peak_pending);
      ("delay_line_fallbacks", string_of_int !fallbacks);
      ("baseline_commit", Printf.sprintf "%S" macro_baseline_commit);
      ( "baseline_packets_per_sec",
        Printf.sprintf "%.1f" macro_baseline_packets_per_sec );
      ( "baseline_minor_words_per_packet",
        Printf.sprintf "%.2f" macro_baseline_minor_words_per_packet );
      ( "baseline_peak_pending_events_2flow",
        string_of_int macro_baseline_peak_pending );
      ("speedup_packets_per_sec", Printf.sprintf "%.3f" speedup);
      ("alloc_reduction_factor", Printf.sprintf "%.3f" alloc_factor);
      ("snapshot_interval_sim_sec", Printf.sprintf "%g" snapshot_interval);
      ("snapshot_checkpoints_per_run", string_of_int per_run);
      ("packets_per_sec_no_snapshots", Printf.sprintf "%.1f" pps_plain);
      ("packets_per_sec_with_snapshots", Printf.sprintf "%.1f" pps_snap);
      ("snapshot_overhead_frac", Printf.sprintf "%.4f" overhead);
      ("monitor_period_sim_sec", Printf.sprintf "%g" monitor_period);
      ("packets_per_sec_unmonitored", Printf.sprintf "%.1f" pps_unmon);
      ("packets_per_sec_monitored", Printf.sprintf "%.1f" pps_mon);
      ("oracle_overhead_frac", Printf.sprintf "%.4f" oracle_frac);
      ("churn_population", string_of_int churn_n);
      ("flows_per_sec", Printf.sprintf "%.1f" fps_wheel_big);
      ("flows_per_sec_wheel_8", Printf.sprintf "%.1f" fps_wheel_small);
      ("flows_per_sec_heap_8", Printf.sprintf "%.1f" fps_heap_small);
      ("flows_per_sec_wheel_big", Printf.sprintf "%.1f" fps_wheel_big);
      ("flows_per_sec_heap_big", Printf.sprintf "%.1f" fps_heap_big);
      ("wheel_over_heap_small", Printf.sprintf "%.3f" wheel_over_heap_small);
      ("wheel_over_heap_big", Printf.sprintf "%.3f" wheel_over_heap_big);
      ( "baseline_wheel_over_heap_big",
        Printf.sprintf "%.3f" churn_baseline_wheel_over_heap_big );
      ("churn_baseline_commit", Printf.sprintf "%S" churn_baseline_commit);
      ("wheel_heap_crossover_population", string_of_int crossover);
      ("wheel_lazy_bypass_8", if bypass_8 then "true" else "false");
      ("census_population", string_of_int census_n);
      ("census_wall_sec", Printf.sprintf "%.1f" census_wall);
      ("flows_per_sec_census", Printf.sprintf "%.1f" fps_census);
      ("census_completed", string_of_int census_completed);
      ("census_starved", string_of_int census_starved);
      ("census_slots", string_of_int census_slots);
      ("census_live_words", string_of_int census_live_words);
      ("census_bytes_per_flow", Printf.sprintf "%.1f" census_bytes_per_flow);
      ("fluid_sweep_sim_seconds", Printf.sprintf "%g" fluid_sweep_sim_seconds);
      ("fluid_sweep_seconds_packet", Printf.sprintf "%.4f" t_sweep_packet);
      ("fluid_sweep_seconds_fluid", Printf.sprintf "%.6f" t_sweep_fluid);
      ("fluid_speedup_threshold", Printf.sprintf "%.1f" fluid_speedup);
      ("fluid_sim_seconds_per_sec", Printf.sprintf "%.1f" fluid_sim_per_sec);
    ];
  Printf.printf "wrote %s\n" json

let () =
  if macro_only then begin
    macro_bench ();
    exit 0
  end;
  Printf.printf "Reproduction harness%s\n" (if quick then " (quick mode)" else "");
  let workers = Runner.Pool.default_workers () in
  let rows, stats = Experiments.Registry.run_all ~quick ~workers () in
  let good = List.length (List.filter (fun r -> r.Experiments.Report.ok) rows) in
  Printf.printf "\n%d/%d checks hold the paper's shape\n" good (List.length rows);
  Printf.printf "(suite ran on %d workers: %d jobs, %d executed)\n" workers
    stats.Runner.Pool.jobs stats.Runner.Pool.executed;
  figures ();
  pool_speedup ();
  microbenches ();
  macro_bench ();
  if good < List.length rows then exit 2
